//! The TAGE predictor proper: prediction, update and allocation.
//!
//! The hot path is engineered to be allocation-free: the tagged components
//! live in the flat structure-of-arrays [`TageTables`] storage, and a
//! lookup's per-table observables are collected in the fixed-size
//! [`TableLookups`] scratch carried inside [`TagePrediction`], so
//! [`TagePredictor::predict`] and [`TagePredictor::update`] never touch the
//! heap. `tests/soa_parity.rs` pins this implementation bit-for-bit against
//! the nested-`Vec` [`crate::reference::ReferenceTagePredictor`].

use tage_predictors::counter::SignedCounter;
use tage_predictors::history::HistoryRegister;
use tage_predictors::{BranchPredictor, Prediction, PredictorCore};
use tage_traces::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use tage_traces::SplitMix64;

use crate::folded::FoldedHistory;
use crate::geometry::{TageBlueprint, TageGeometry};
use crate::prediction::{Provider, TableLookup, TableLookups, TagePrediction};
use crate::tables::TageTables;

/// Internal event counters, useful for tests and for reporting predictor
/// behaviour alongside experiment results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TageStats {
    /// Number of `update` calls.
    pub updates: u64,
    /// Number of mispredictions observed at update time.
    pub mispredictions: u64,
    /// Number of tagged entries allocated.
    pub allocations: u64,
    /// Number of allocation attempts that found no `u == 0` victim.
    pub allocation_failures: u64,
    /// Number of graceful useful-counter reset steps performed.
    pub useful_resets: u64,
}

/// The TAGE conditional branch predictor.
///
/// See the crate-level documentation for the algorithm overview and
/// [`crate::TageConfig`] for the three storage presets of the paper.
///
/// # Example
///
/// ```
/// use tage::{TageConfig, TagePredictor};
///
/// let mut predictor = TagePredictor::new(TageConfig::small());
/// let prediction = predictor.predict(0x1234_5678);
/// predictor.update(0x1234_5678, true, &prediction);
/// assert_eq!(predictor.stats().updates, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TagePredictor {
    pub(crate) geometry: TageGeometry,
    pub(crate) history_lengths: Vec<usize>,
    pub(crate) bimodal: Vec<SignedCounter>,
    pub(crate) tables: TageTables,
    pub(crate) history: HistoryRegister,
    pub(crate) index_folds: Vec<FoldedHistory>,
    pub(crate) tag_folds_a: Vec<FoldedHistory>,
    pub(crate) tag_folds_b: Vec<FoldedHistory>,
    /// The path-history register XORed into the tagged index hashes: the low
    /// address bit of the last `geometry.path_history_bits` branches. Stays
    /// zero (and the XOR a no-op) when the geometry disables path history —
    /// the legacy behaviour of every [`crate::TageConfig`] preset.
    pub(crate) path_history: u64,
    pub(crate) use_alt_on_na: SignedCounter,
    pub(crate) rng: SplitMix64,
    /// Updates left until the next periodic useful-counter reset — a
    /// countdown from `geometry.useful_reset_period`, not an absolute tick:
    /// testing a decrement for zero avoids the 64-bit remainder the
    /// reference predictor pays on every update.
    pub(crate) until_useful_reset: u64,
    pub(crate) reset_phase: u8,
    pub(crate) stats: TageStats,
}

impl TagePredictor {
    /// Creates a predictor from any blueprint — a [`crate::TageConfig`]
    /// preset, an explicit [`TageGeometry`], or a reference to either.
    ///
    /// # Panics
    ///
    /// Panics if the blueprint's geometry does not pass
    /// [`TageGeometry::validate`].
    pub fn new(blueprint: impl TageBlueprint) -> Self {
        let geometry = blueprint.tage_geometry();
        if let Err(reason) = geometry.validate() {
            panic!("invalid TAGE configuration: {reason}");
        }
        let history_lengths = geometry.history_lengths();
        let index_bits: Vec<u32> = geometry.tables.iter().map(|t| t.index_bits).collect();
        let tables = TageTables::new(&index_bits, geometry.counter_bits, geometry.useful_bits);
        let bimodal =
            vec![SignedCounter::new(geometry.bimodal_counter_bits); geometry.bimodal_entries()];
        let history = HistoryRegister::new(geometry.max_history() + 8);
        let index_folds = geometry
            .tables
            .iter()
            .map(|t| FoldedHistory::new(t.history_length, t.index_fold_bits as usize))
            .collect();
        let tag_folds_a = geometry
            .tables
            .iter()
            .map(|t| FoldedHistory::new(t.history_length, t.tag_fold_bits as usize))
            .collect();
        let tag_folds_b = geometry
            .tables
            .iter()
            .map(|t| FoldedHistory::new(t.history_length, t.tag_fold2_bits as usize))
            .collect();
        let use_alt_on_na = SignedCounter::new(geometry.use_alt_on_na_bits);
        let rng = SplitMix64::new(geometry.rng_seed);
        TagePredictor {
            history_lengths,
            bimodal,
            tables,
            history,
            index_folds,
            tag_folds_a,
            tag_folds_b,
            path_history: 0,
            use_alt_on_na,
            rng,
            until_useful_reset: geometry.useful_reset_period,
            reset_phase: 0,
            stats: TageStats::default(),
            geometry,
        }
    }

    /// The predictor's explicit geometry (a [`crate::TageConfig`] passed to
    /// [`TagePredictor::new`] is expanded through
    /// [`TageGeometry::from_config`]).
    pub fn geometry(&self) -> &TageGeometry {
        &self.geometry
    }

    /// Internal event counters.
    pub fn stats(&self) -> TageStats {
        self.stats
    }

    /// Total predictor storage in bits (delegates to the geometry).
    pub fn storage_bits(&self) -> u64 {
        self.geometry.storage_bits()
    }

    /// The current value of the `USE_ALT_ON_NA` counter (exposed for tests
    /// and diagnostics).
    pub fn use_alt_on_na(&self) -> i8 {
        self.use_alt_on_na.value()
    }

    /// Changes the counter-update automaton at run time.
    ///
    /// The adaptive saturation-probability controller of the paper's
    /// Section 6.2 uses this to steer the probability while the predictor
    /// runs; the predictor tables themselves are left untouched.
    pub fn set_automaton(&mut self, automaton: crate::CounterAutomaton) {
        self.geometry.automaton = automaton;
    }

    /// Computes the bimodal table index for `pc`.
    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) & (self.bimodal.len() as u64 - 1)) as usize
    }

    /// Looks the predictor up for the conditional branch at `pc`.
    ///
    /// This does not modify any predictor state, so it can be called
    /// repeatedly (e.g. by a confidence estimator *and* the simulation
    /// loop) before the matching [`TagePredictor::update`]. The lookup is
    /// allocation-free: every per-table observable lands in the returned
    /// prediction's fixed-size [`TableLookups`] scratch.
    pub fn predict(&self, pc: u64) -> TagePrediction {
        let mut lookups = TableLookups::new();
        // Zipping the per-table geometry with the folded-history registers
        // avoids four bounds checks per table; the arithmetic is exactly
        // `table_index`/`table_tag`. The path-history XOR vanishes for
        // geometries with `path_history_bits == 0` (`path_history` is then
        // always zero), preserving the legacy hash bit for bit.
        let hashed_base = pc >> 2;
        let path = self.path_history;
        let folds = self
            .geometry
            .tables
            .iter()
            .zip(&self.index_folds)
            .zip(&self.tag_folds_a)
            .zip(&self.tag_folds_b);
        for (t, (((table, index_fold), tag_fold_a), tag_fold_b)) in folds.enumerate() {
            let index_bits = u64::from(table.index_bits);
            let index_mask = (1u64 << index_bits) - 1;
            let tag_mask = (1u64 << table.tag_bits) - 1;
            let hashed_pc = hashed_base ^ (pc >> (index_bits + t as u64 + 1));
            let idx = ((hashed_pc ^ index_fold.value() ^ path) & index_mask) as usize;
            let tag =
                ((hashed_base ^ tag_fold_a.value() ^ (tag_fold_b.value() << 1)) & tag_mask) as u16;
            lookups.push(TableLookup {
                index: idx as u32,
                tag,
                hit: self.tables.tag(t, idx) == tag,
            });
        }
        self.resolve(pc, lookups)
    }

    /// Resolves a completed set of per-table probes into the final
    /// prediction: provider/alternate selection, `USE_ALT_ON_NA`, and the
    /// full observable [`TagePrediction`].
    ///
    /// Shared verbatim by the scalar [`TagePredictor::predict`] and the
    /// lane-batched [`crate::lanes::LaneGroup`] path, so the two cannot
    /// drift apart.
    pub(crate) fn resolve(&self, pc: u64, lookups: TableLookups) -> TagePrediction {
        let mut out = TagePrediction {
            tables: lookups,
            ..TagePrediction::default()
        };
        self.resolve_into(pc, &mut out);
        out
    }

    /// The in-place core of [`TagePredictor::resolve`]: reads the completed
    /// probes from `out.tables` and writes every other field of `out`.
    ///
    /// Taking the lookups through the output slot lets the lane-batched
    /// path assemble probes directly in its persistent per-lane buffers, so
    /// the ~150-byte prediction is written exactly once per branch instead
    /// of being copied through stack temporaries.
    pub(crate) fn resolve_into(&self, pc: u64, out: &mut TagePrediction) {
        let num_tables = self.tables.num_tables();
        let lookups = &out.tables;
        let bimodal_index = self.bimodal_index(pc);
        let bimodal_counter = self.bimodal[bimodal_index];
        let bimodal_taken = bimodal_counter.predict_taken();

        // Selecting the provider and alternate from the maintained hit
        // bitmask through `leading_zeros` is branch-free, where the natural
        // backward `find` scans cost one data-dependent (and hence
        // frequently mispredicted) branch each on the hot path.
        let hit_mask = u32::from(lookups.hit_mask());
        debug_assert_eq!(usize::from(lookups.hit_mask() >> num_tables), 0);
        // Provider: hitting component with the longest history.
        let provider_table = hit_mask.checked_ilog2().map(|t| t as usize);
        // Alternate: next hitting component, else the bimodal prediction.
        let alternate_table = provider_table
            .and_then(|p| (hit_mask & !(1u32 << p)).checked_ilog2())
            .map(|t| t as usize);

        let (alternate_taken, alternate_provider) = match alternate_table {
            Some(t) => {
                let ctr = self.tables.ctr(t, lookups.index(t));
                (ctr.predict_taken(), Provider::Tagged { table: t })
            }
            None => (bimodal_taken, Provider::Bimodal),
        };

        match provider_table {
            Some(t) => {
                let ctr = self.tables.ctr(t, lookups.index(t));
                let provider_taken = ctr.predict_taken();
                let weak = ctr.is_weak();
                // Use the alternate prediction for (likely newly allocated)
                // weak entries when USE_ALT_ON_NA is non-negative.
                let use_alt = weak && self.use_alt_on_na.value() >= 0;
                out.taken = if use_alt {
                    alternate_taken
                } else {
                    provider_taken
                };
                out.provider = Provider::Tagged { table: t };
                out.provider_counter = ctr.value();
                out.provider_magnitude = ctr.centered_magnitude();
                out.provider_weak = weak;
                out.alternate_taken = alternate_taken;
                out.alternate_provider = alternate_provider;
                out.used_alternate = use_alt;
            }
            None => {
                out.taken = bimodal_taken;
                out.provider = Provider::Bimodal;
                out.provider_counter = bimodal_counter.value();
                out.provider_magnitude = bimodal_counter.centered_magnitude();
                out.provider_weak = bimodal_counter.is_weak();
                out.alternate_taken = bimodal_taken;
                out.alternate_provider = Provider::Bimodal;
                out.used_alternate = false;
            }
        }
        out.bimodal_index = bimodal_index;
        out.bimodal_counter = bimodal_counter.value();
    }

    /// Updates the predictor with the resolved outcome of the branch at
    /// `pc`. `prediction` must be the value returned by the matching
    /// [`TagePredictor::predict`] call (made with the same global history).
    pub fn update(&mut self, pc: u64, taken: bool, prediction: &TagePrediction) {
        debug_assert_eq!(
            self.bimodal_index(pc),
            prediction.bimodal_index,
            "the prediction passed to update was computed for a different branch"
        );
        self.update_counters(taken, prediction);

        // 4. Advance the global history, the folded histories and the path
        //    history.
        self.push_history(taken);
        self.push_path(pc);
    }

    /// Steps 1–3 of [`TagePredictor::update`] (tick/graceful reset, provider
    /// counter update, allocation) without the history advance, so batched
    /// callers can sequence counter updates and history pushes separately.
    pub(crate) fn update_counters(&mut self, taken: bool, prediction: &TagePrediction) {
        self.stats.updates += 1;
        if prediction.taken != taken {
            self.stats.mispredictions += 1;
        }

        // 1. Periodic graceful reset of the useful counters.
        self.until_useful_reset -= 1;
        if self.until_useful_reset == 0 {
            self.until_useful_reset = self.geometry.useful_reset_period;
            self.tables.clear_useful_bit(self.reset_phase);
            self.reset_phase = (self.reset_phase + 1) % self.geometry.useful_bits;
            self.stats.useful_resets += 1;
        }

        // 2. Update the provider component.
        match prediction.provider {
            Provider::Tagged { table } => {
                let idx = prediction.tables.index(table);
                // The provider counter cannot have moved since the matching
                // predict, so its recorded value stands in for a (random,
                // usually L1-missing) reload of the table entry.
                let provider_taken = prediction.provider_counter >= 0;

                // USE_ALT_ON_NA management: when the provider entry is
                // weak (newly allocated) and the alternate prediction
                // disagrees with it, learn which of the two tends to be
                // right.
                if prediction.provider_weak && prediction.alternate_taken != provider_taken {
                    if prediction.alternate_taken == taken {
                        self.use_alt_on_na.increment();
                    } else {
                        self.use_alt_on_na.decrement();
                    }
                }

                // Useful counter: updated when the provider and the
                // alternate prediction disagree.
                if prediction.alternate_taken != provider_taken {
                    if provider_taken == taken {
                        self.tables.useful_mut(table, idx).increment();
                    } else {
                        self.tables.useful_mut(table, idx).decrement();
                    }
                }

                // Prediction counter, through the configured automaton.
                self.geometry.automaton.update_counter(
                    self.tables.ctr_mut(table, idx),
                    taken,
                    &mut self.rng,
                );
            }
            Provider::Bimodal => {
                let idx = prediction.bimodal_index;
                self.bimodal[idx].update(taken);
            }
        }

        // 3. Allocation on a misprediction (of the final prediction), in a
        //    component using a longer history than the provider.
        if prediction.taken != taken {
            let first_candidate = match prediction.provider {
                Provider::Bimodal => 0,
                Provider::Tagged { table } => table + 1,
            };
            if first_candidate < self.tables.num_tables() {
                self.allocate(first_candidate, taken, prediction);
            }
        }
    }

    /// Allocates at most one entry in a table with rank `first_candidate` or
    /// higher, following the paper's policy: choose among useless entries
    /// (`u == 0`), initialise the counter to weak-correct and `u` to zero.
    ///
    /// The candidate scan is a single allocation-free pass: candidates are
    /// consumed as they are found (prefer shorter histories, skip forward
    /// pseudo-randomly so allocations spread over the candidate tables — the
    /// geometric choice of the reference TAGE implementations), consulting
    /// the RNG exactly as the old collect-then-scan code did.
    fn allocate(&mut self, first_candidate: usize, taken: bool, prediction: &TagePrediction) {
        let num_tables = self.tables.num_tables();
        let mut chosen: Option<usize> = None;
        for t in first_candidate..num_tables {
            if !self.tables.is_allocatable(t, prediction.tables.index(t)) {
                continue;
            }
            if chosen.is_some() && self.rng.chance(0.5) {
                break;
            }
            chosen = Some(t);
        }
        let Some(chosen) = chosen else {
            // No victim: age all would-be victims so that an entry frees up
            // soon (standard TAGE behaviour).
            for t in first_candidate..num_tables {
                let idx = prediction.tables.index(t);
                self.tables.useful_mut(t, idx).decrement();
            }
            self.stats.allocation_failures += 1;
            return;
        };
        let idx = prediction.tables.index(chosen);
        let tag = prediction.tables.tag(chosen);
        self.tables.allocate(chosen, idx, tag, taken);
        self.stats.allocations += 1;
    }

    /// Pushes the resolved outcome into the global history and keeps every
    /// folded register consistent.
    pub(crate) fn push_history(&mut self, taken: bool) {
        let folds = self
            .index_folds
            .iter_mut()
            .zip(&mut self.tag_folds_a)
            .zip(&mut self.tag_folds_b);
        for (&length, ((index_fold, tag_fold_a), tag_fold_b)) in
            self.history_lengths.iter().zip(folds)
        {
            let evicted = self.history.bit(length - 1);
            index_fold.update(taken, evicted);
            tag_fold_a.update(taken, evicted);
            tag_fold_b.update(taken, evicted);
        }
        self.history.push(taken);
    }

    /// Shifts the low address bit of the committed branch into the path
    /// history. A no-op for geometries without a path register.
    pub(crate) fn push_path(&mut self, pc: u64) {
        let bits = self.geometry.path_history_bits;
        if bits == 0 {
            return;
        }
        let mask = (1u64 << bits) - 1;
        self.path_history = ((self.path_history << 1) | ((pc >> 2) & 1)) & mask;
    }

    /// Resets all dynamic state (tables, histories, counters, statistics)
    /// while keeping the configuration.
    ///
    /// The reset happens in place without heap allocation, and restores the
    /// exact state of a freshly constructed predictor (pinned by tests), so
    /// a multilane runner can recycle a predictor for the next stream on a
    /// lane without perturbing allocation counts.
    pub fn reset(&mut self) {
        self.tables.clear();
        self.bimodal
            .fill(SignedCounter::new(self.geometry.bimodal_counter_bits));
        self.history.clear();
        for fold in &mut self.index_folds {
            fold.clear();
        }
        for fold in &mut self.tag_folds_a {
            fold.clear();
        }
        for fold in &mut self.tag_folds_b {
            fold.clear();
        }
        self.path_history = 0;
        self.use_alt_on_na = SignedCounter::new(self.geometry.use_alt_on_na_bits);
        self.rng = SplitMix64::new(self.geometry.rng_seed);
        self.until_useful_reset = self.geometry.useful_reset_period;
        self.reset_phase = 0;
        self.stats = TageStats::default();
    }

    /// A digest of the predictor's specification — the geometry's
    /// [`TageGeometry::spec_digest`], which folds every structural field of
    /// every table (see [`BranchPredictor::spec_digest`]). The counter
    /// automaton is deliberately **excluded** — adaptive runs mutate it at
    /// run time, so it travels in the snapshot payload instead. Distinct
    /// from the reference implementation's digest: the two predictors lay
    /// out their useful-reset state differently, so their snapshots are not
    /// interchangeable.
    pub fn spec_digest(&self) -> u64 {
        self.geometry.spec_digest()
    }

    /// [`TagePredictor::spec_digest`] computed from a blueprint alone,
    /// without building the predictor's tables — cheap enough for cache-key
    /// derivation on every segment.
    pub fn spec_digest_for(blueprint: impl TageBlueprint) -> u64 {
        blueprint.tage_geometry().spec_digest()
    }

    /// Serializes the predictor's **full** dynamic state — automaton,
    /// bimodal and tagged tables, history, folded histories, RNG, reset
    /// countdown and statistics — into the framed format of
    /// [`tage_traces::snapshot`].
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(self.spec_digest());

        w.begin_section();
        crate::snapshot::write_automaton(&mut w, self.geometry.automaton);
        w.end_section();

        w.begin_section();
        for ctr in &self.bimodal {
            w.write_i8(ctr.value());
        }
        w.end_section();

        w.begin_section();
        let (tags, ctrs, useful) = self.tables.raw_parts();
        for &tag in tags {
            w.write_u16(tag);
        }
        for ctr in ctrs {
            w.write_i8(ctr.value());
        }
        for u in useful {
            w.write_u8(u.value());
        }
        w.end_section();

        w.begin_section();
        crate::snapshot::write_history(&mut w, &self.history);
        crate::snapshot::write_folds(&mut w, &self.index_folds);
        crate::snapshot::write_folds(&mut w, &self.tag_folds_a);
        crate::snapshot::write_folds(&mut w, &self.tag_folds_b);
        w.write_u64(self.path_history);
        w.end_section();

        w.begin_section();
        w.write_i8(self.use_alt_on_na.value());
        w.write_u64(self.rng.state());
        w.write_u64(self.until_useful_reset);
        w.write_u8(self.reset_phase);
        crate::snapshot::write_stats(&mut w, &self.stats);
        w.end_section();

        w.finish()
    }

    /// Restores state captured by [`TagePredictor::snapshot`]. The restore
    /// is all-or-nothing: the whole snapshot is decoded and validated before
    /// any live state is touched, so on error the predictor is exactly as it
    /// was.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] carrying the byte offset of the problem
    /// when the bytes are truncated, corrupt, from a different format
    /// version, or from a different predictor specification.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes, TagePredictor::spec_digest(self))?;

        r.begin_section()?;
        let automaton = crate::snapshot::read_automaton(&mut r)?;
        r.end_section()?;

        r.begin_section()?;
        let mut bimodal = Vec::with_capacity(self.bimodal.len());
        for _ in 0..self.bimodal.len() {
            bimodal.push(r.read_i8()?);
        }
        r.end_section()?;

        r.begin_section()?;
        let total = self.tables.total_entries();
        let mut tags = Vec::with_capacity(total);
        for _ in 0..total {
            tags.push(r.read_u16()?);
        }
        let mut ctrs = Vec::with_capacity(total);
        for _ in 0..total {
            ctrs.push(r.read_i8()?);
        }
        let mut useful = Vec::with_capacity(total);
        for _ in 0..total {
            useful.push(r.read_u8()?);
        }
        r.end_section()?;

        r.begin_section()?;
        let history = crate::snapshot::read_history(&mut r, self.history.words().len())?;
        let index_folds = crate::snapshot::read_folds(&mut r, &self.index_folds)?;
        let tag_folds_a = crate::snapshot::read_folds(&mut r, &self.tag_folds_a)?;
        let tag_folds_b = crate::snapshot::read_folds(&mut r, &self.tag_folds_b)?;
        let path_history = r.read_u64()?;
        r.end_section()?;

        r.begin_section()?;
        let use_alt_on_na = r.read_i8()?;
        let rng_state = r.read_u64()?;
        let until_useful_reset = r.read_u64()?;
        let reset_phase = r.read_u8()?;
        let stats = crate::snapshot::read_stats(&mut r)?;
        r.end_section()?;

        r.finish()?;

        // Everything decoded and validated: commit.
        self.geometry.automaton = automaton;
        for (ctr, value) in self.bimodal.iter_mut().zip(bimodal) {
            ctr.set(value);
        }
        let (live_tags, live_ctrs, live_useful) = self.tables.raw_parts_mut();
        live_tags.copy_from_slice(&tags);
        for (ctr, value) in live_ctrs.iter_mut().zip(ctrs) {
            ctr.set(value);
        }
        for (u, value) in live_useful.iter_mut().zip(useful) {
            u.set(value);
        }
        self.history.load_words(&history);
        for (fold, value) in self.index_folds.iter_mut().zip(index_folds) {
            fold.set_value(value);
        }
        for (fold, value) in self.tag_folds_a.iter_mut().zip(tag_folds_a) {
            fold.set_value(value);
        }
        for (fold, value) in self.tag_folds_b.iter_mut().zip(tag_folds_b) {
            fold.set_value(value);
        }
        self.path_history = path_history;
        self.use_alt_on_na.set(use_alt_on_na);
        self.rng = SplitMix64::from_state(rng_state);
        self.until_useful_reset = until_useful_reset;
        self.reset_phase = reset_phase;
        self.stats = stats;
        Ok(())
    }
}

impl BranchPredictor for TagePredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        let p = TagePredictor::predict(self, pc);
        Prediction::new(p.taken, i64::from(p.provider_magnitude))
    }

    fn update(&mut self, pc: u64, taken: bool, prediction: &Prediction) {
        // Recompute the full observable prediction: no state has changed
        // since the matching `predict` call, so this reproduces it exactly.
        let full = TagePredictor::predict(self, pc);
        debug_assert_eq!(full.taken, prediction.taken);
        TagePredictor::update(self, pc, taken, &full);
    }

    fn storage_bits(&self) -> u64 {
        self.geometry.storage_bits()
    }

    fn name(&self) -> String {
        self.geometry.name()
    }

    fn reset(&mut self) {
        TagePredictor::reset(self)
    }

    fn clone_fresh(&self) -> Box<dyn BranchPredictor + Send> {
        Box::new(TagePredictor::new(self.geometry.clone()))
    }

    fn snapshot(&self) -> Vec<u8> {
        TagePredictor::snapshot(self)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        TagePredictor::restore(self, bytes)
    }

    fn spec_digest(&self) -> u64 {
        TagePredictor::spec_digest(self)
    }
}

/// The engine-facing execution interface: unlike the flattening
/// [`BranchPredictor`] impl above, this preserves the full observable
/// [`TagePrediction`], so the storage-free confidence classification sees
/// the provider component and its counter exactly as the hardware would.
impl PredictorCore for TagePredictor {
    type Lookup = TagePrediction;

    fn lookup(&mut self, pc: u64) -> TagePrediction {
        TagePredictor::predict(self, pc)
    }

    fn train(&mut self, pc: u64, taken: bool, lookup: &TagePrediction) {
        TagePredictor::update(self, pc, taken, lookup)
    }

    fn reset(&mut self) {
        TagePredictor::reset(self)
    }

    fn storage_bits(&self) -> u64 {
        self.geometry.storage_bits()
    }

    fn name(&self) -> String {
        self.geometry.name()
    }

    fn snapshot(&self) -> Vec<u8> {
        TagePredictor::snapshot(self)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        TagePredictor::restore(self, bytes)
    }

    fn spec_digest(&self) -> u64 {
        TagePredictor::spec_digest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::CounterAutomaton;
    use crate::config::TageConfig;

    fn run_branch(predictor: &mut TagePredictor, pc: u64, outcomes: &[bool]) -> u64 {
        let mut mispredictions = 0;
        for &taken in outcomes {
            let pred = TagePredictor::predict(predictor, pc);
            if pred.taken != taken {
                mispredictions += 1;
            }
            TagePredictor::update(predictor, pc, taken, &pred);
        }
        mispredictions
    }

    #[test]
    fn learns_a_strongly_biased_branch() {
        let mut p = TagePredictor::new(TageConfig::small());
        let outcomes = vec![true; 200];
        let misses = run_branch(&mut p, 0x400100, &outcomes);
        assert!(misses <= 3, "misses = {misses}");
    }

    #[test]
    fn learns_a_loop_pattern_bimodal_cannot() {
        // Period-5 loop: bimodal alone mispredicts every 5th iteration.
        let mut tage = TagePredictor::new(TageConfig::medium());
        let mut outcomes = Vec::new();
        for _ in 0..400 {
            for i in 0..5 {
                outcomes.push(i != 4);
            }
        }
        let misses = run_branch(&mut tage, 0x400200, &outcomes);
        // After warmup TAGE should capture the loop almost perfectly:
        // far fewer than the 400 exit mispredictions bimodal would make.
        assert!(misses < 100, "misses = {misses}");
    }

    #[test]
    fn learns_history_correlated_branches() {
        // Branch B's outcome equals branch A's previous outcome.
        let mut p = TagePredictor::new(TageConfig::medium());
        let mut b_misses_late = 0;
        let mut rng = SplitMix64::new(5);
        for i in 0..6000 {
            // Branch A: pseudo-random.
            let a_taken = rng.chance(0.5);
            let pred_a = p.predict(0x400300);
            p.update(0x400300, a_taken, &pred_a);
            // Branch B: copies A's outcome.
            let b_taken = a_taken;
            let pred_b = p.predict(0x400340);
            if i > 4000 && pred_b.taken != b_taken {
                b_misses_late += 1;
            }
            p.update(0x400340, b_taken, &pred_b);
        }
        assert!(b_misses_late < 150, "late misses = {b_misses_late}");
    }

    #[test]
    fn cold_predictor_uses_bimodal_provider() {
        let p = TagePredictor::new(TageConfig::small());
        let pred = p.predict(0x1234);
        assert!(pred.provider.is_bimodal());
        assert!(!pred.used_alternate);
        assert_eq!(pred.alternate_provider, Provider::Bimodal);
    }

    #[test]
    fn mispredictions_allocate_tagged_entries() {
        let mut p = TagePredictor::new(TageConfig::small());
        // Alternate outcomes so the bimodal keeps mispredicting.
        let outcomes: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        run_branch(&mut p, 0x400400, &outcomes);
        assert!(p.stats().allocations > 0);
        // Eventually a tagged component becomes the provider.
        let pred = p.predict(0x400400);
        assert!(
            !pred.provider.is_bimodal(),
            "provider = {:?}",
            pred.provider
        );
    }

    #[test]
    fn stats_track_updates_and_mispredictions() {
        let mut p = TagePredictor::new(TageConfig::small());
        let outcomes: Vec<bool> = (0..50).map(|i| i % 3 == 0).collect();
        let misses = run_branch(&mut p, 0x400500, &outcomes);
        assert_eq!(p.stats().updates, 50);
        assert_eq!(p.stats().mispredictions, misses);
    }

    #[test]
    fn useful_reset_fires_periodically() {
        let config = TageConfig::small()
            .to_builder()
            .useful_reset_period(64)
            .build()
            .unwrap();
        let mut p = TagePredictor::new(config);
        let outcomes: Vec<bool> = (0..200).map(|i| i % 2 == 0).collect();
        run_branch(&mut p, 0x400600, &outcomes);
        assert!(p.stats().useful_resets >= 3);
    }

    #[test]
    fn in_place_reset_is_bit_identical_to_a_fresh_predictor() {
        let config = TageConfig::small();
        let mut reset = TagePredictor::new(config.clone());
        let mut rng = SplitMix64::new(77);
        for i in 0..5_000u64 {
            let pc = 0x400000 + (i % 97) * 8;
            let taken = rng.chance(0.6);
            let pred = reset.predict(pc);
            reset.update(pc, taken, &pred);
        }
        reset.reset();
        let mut fresh = TagePredictor::new(config);
        assert_eq!(reset.stats(), fresh.stats());
        // Drive both through the same stream: every observable prediction
        // (tables, counters, RNG-driven allocations) must stay identical.
        let mut rng = SplitMix64::new(99);
        for i in 0..5_000u64 {
            let pc = 0x500000 + (i % 131) * 4;
            let taken = rng.chance(0.4);
            let a = reset.predict(pc);
            let b = fresh.predict(pc);
            assert_eq!(a, b, "diverged at step {i}");
            reset.update(pc, taken, &a);
            fresh.update(pc, taken, &b);
        }
        assert_eq!(reset.stats(), fresh.stats());
    }

    #[test]
    fn reset_clears_dynamic_state() {
        let mut p = TagePredictor::new(TageConfig::small());
        run_branch(&mut p, 0x400700, &[true; 50]);
        assert!(p.stats().updates > 0);
        p.reset();
        assert_eq!(p.stats().updates, 0);
        let pred = p.predict(0x400700);
        assert!(pred.provider.is_bimodal());
    }

    #[test]
    fn predict_is_pure() {
        let mut p = TagePredictor::new(TageConfig::medium());
        run_branch(&mut p, 0x400800, &[true, false, true, true, false]);
        let a = p.predict(0x400800);
        let b = p.predict(0x400800);
        assert_eq!(a, b);
    }

    #[test]
    fn update_uses_indices_from_prediction() {
        // The prediction carries the per-table indices/tags; update must not
        // panic even for a prediction taken just before the history moved.
        let mut p = TagePredictor::new(TageConfig::small());
        let pred = p.predict(0x400900);
        p.update(0x400900, true, &pred);
        assert_eq!(p.stats().updates, 1);
    }

    #[test]
    fn branch_predictor_trait_matches_inherent_behaviour() {
        let config = TageConfig::small();
        let mut a = TagePredictor::new(config.clone());
        let mut b = TagePredictor::new(config);
        let outcomes: Vec<bool> = (0..300).map(|i| (i / 3) % 2 == 0).collect();
        let mut inherent_misses = 0;
        let mut trait_misses = 0;
        for &taken in &outcomes {
            let pa = a.predict(0x400a00);
            if pa.taken != taken {
                inherent_misses += 1;
            }
            a.update(0x400a00, taken, &pa);

            let pb = BranchPredictor::predict(&mut b, 0x400a00);
            if pb.taken != taken {
                trait_misses += 1;
            }
            BranchPredictor::update(&mut b, 0x400a00, taken, &pb);
        }
        assert_eq!(inherent_misses, trait_misses);
        assert_eq!(BranchPredictor::storage_bits(&a), 16 * 1024);
        assert_eq!(BranchPredictor::name(&a), "TAGE-16K");
    }

    #[test]
    fn probabilistic_automaton_changes_saturation_population() {
        // With the modified automaton, far fewer provider counters should be
        // saturated after steady-state training on mixed branches.
        let count_saturated = |automaton: CounterAutomaton| {
            let config = TageConfig::small().with_automaton(automaton);
            let mut p = TagePredictor::new(config);
            let mut rng = SplitMix64::new(9);
            let mut saturated = 0u64;
            let mut total = 0u64;
            for i in 0..40_000u64 {
                let pc = 0x400000 + (i % 64) * 16;
                let taken = rng.chance(0.9);
                let pred = p.predict(pc);
                if !pred.provider.is_bimodal() {
                    total += 1;
                    if pred.is_saturated_tagged(3) {
                        saturated += 1;
                    }
                }
                p.update(pc, taken, &pred);
            }
            (saturated, total)
        };
        let (sat_std, tot_std) = count_saturated(CounterAutomaton::Standard);
        let (sat_mod, tot_mod) = count_saturated(CounterAutomaton::paper_default());
        assert!(tot_std > 1000 && tot_mod > 1000);
        let rate_std = sat_std as f64 / tot_std as f64;
        let rate_mod = sat_mod as f64 / tot_mod as f64;
        assert!(
            rate_mod < rate_std * 0.7,
            "modified automaton should shrink the saturated class: {rate_mod} vs {rate_std}"
        );
    }

    #[test]
    fn use_alt_on_na_counter_moves() {
        let mut p = TagePredictor::new(TageConfig::small());
        let initial = p.use_alt_on_na();
        // Drive lots of mispredictions so newly allocated entries are used.
        let mut rng = SplitMix64::new(123);
        for i in 0..20_000u64 {
            let pc = 0x500000 + (i % 512) * 8;
            let taken = rng.chance(0.5);
            let pred = p.predict(pc);
            p.update(pc, taken, &pred);
        }
        // The counter should have been exercised (moved at least once).
        // Its final sign is workload dependent; just check it stays in range.
        let value = p.use_alt_on_na();
        assert!((-8..=7).contains(&value));
        let _ = initial;
    }

    #[test]
    #[should_panic(expected = "invalid TAGE configuration")]
    fn invalid_config_panics() {
        let mut config = TageConfig::small();
        config.num_tagged_tables = 0;
        TagePredictor::new(config);
    }

    #[test]
    fn distinct_branches_do_not_trample_each_other_much() {
        let mut p = TagePredictor::new(TageConfig::medium());
        // 32 branches, each strongly biased in its own direction.
        let mut misses = 0u64;
        let mut total = 0u64;
        for round in 0..300 {
            for b in 0..32u64 {
                let pc = 0x600000 + b * 32;
                let taken = b % 2 == 0;
                let pred = p.predict(pc);
                if round > 10 {
                    total += 1;
                    if pred.taken != taken {
                        misses += 1;
                    }
                }
                p.update(pc, taken, &pred);
            }
        }
        assert!(
            (misses as f64 / total as f64) < 0.01,
            "miss rate {misses}/{total}"
        );
    }
}
