//! Table 2: prediction coverage, misprediction coverage and misprediction
//! rate (MKP) of the high / medium / low confidence classes, for the three
//! predictor sizes and both suites, with the modified automaton (p = 1/128).

use tage_bench::{branches_from_args, print_header};
use tage_sim::experiment::{modified_configs, three_level_summary, LevelSummaryRow};
use tage_sim::report::{fraction, mkp, TextTable};
use tage_sim::runner::RunOptions;
use tage_traces::suites;

fn cell(row: &tage_sim::experiment::LevelCell) -> String {
    format!(
        "{}-{} ({})",
        fraction(row.pcov),
        fraction(row.mpcov),
        mkp(row.mprate_mkp)
    )
}

fn render(rows: &[LevelSummaryRow]) {
    let mut table = TextTable::new(vec![
        "config / suite",
        "high conf",
        "medium conf",
        "low conf",
    ]);
    for row in rows {
        table.row(vec![
            format!("{} {}", row.config_name, row.suite_name),
            cell(&row.high),
            cell(&row.medium),
            cell(&row.low),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("cell format: Pcov-MPcov (MPrate in MKP), as in the paper's Table 2.");
}

fn main() {
    let branches = branches_from_args();
    print_header(
        "Table 2 — three confidence levels, modified automaton (p = 1/128)",
        branches,
    );
    let mut rows = Vec::new();
    for config in modified_configs() {
        for suite in [suites::cbp1_like(), suites::cbp2_like()] {
            rows.push(three_level_summary(
                &config,
                &suite,
                branches,
                &RunOptions::default(),
            ));
        }
    }
    render(&rows);
}
