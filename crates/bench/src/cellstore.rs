//! The shared content-addressed on-disk store of finished campaign cells.
//!
//! A campaign cell — one (predictor, scheme, suite, scenario) grid point at
//! a fixed per-trace length — is deterministic: its rendered timing-free
//! report bytes depend only on its identity, never on worker count, engine
//! choice, or which process computed it. A [`CellStore`] memoizes those
//! bytes on disk under a content-addressed key, so *any* later consumer of
//! the same cell — a resumed `tage-bench --resume` run, a resubmitted
//! `tage-serve` campaign, or a second in-flight campaign overlapping the
//! first — restores the bytes instead of recomputing the cell.
//!
//! The store grew out of the PR 7 campaign checkpoint (which keyed cells
//! per campaign label): the label left two campaigns over the same grid
//! blind to each other's finished cells, which is exactly the sharing the
//! `tage-serve` daemon needs. Keys now digest only what determines the
//! cell's bytes, so `--checkpoint/--resume` and the daemon share one
//! store format.
//!
//! # What a cell file holds
//!
//! Each `<fnv64 key>.cell` file stores the **exact rendered bytes** of the
//! point's timing-free JSON report element (what
//! [`CampaignReport::render_json`](crate::campaign::CampaignReport::render_json)
//! emits for the point with `include_timing == false`). Restored cells are
//! pasted verbatim into reports, which is what makes a resumed or
//! cache-served report byte-identical to a clean one-shot run's — the CI
//! campaign- and service-smoke jobs `cmp` the two.
//!
//! # Keying and validation
//!
//! [`cell_key`] digests the cell's full content identity: the per-trace
//! length, the predictor/scheme/scenario labels, and the suite's name plus
//! its [content digest](tage_traces::source::SourceSuite::digest) (so a
//! rewritten trace directory invalidates its cells instead of serving
//! stale bytes). The campaign label is deliberately **not** part of the
//! key — it only appears in the report header, so differently-labelled
//! campaigns share cells.
//!
//! On load the stored cell's identity fields are checked against the
//! requesting point; a mismatch (key collision, stale or corrupt file) is
//! treated as absent and the cell is recomputed and rewritten. Stores are
//! atomic (temp-file-plus-rename), so a kill can never leave a torn cell
//! behind and concurrent writers of the same cell are harmless (either
//! complete file wins — the bytes are identical).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tage_sim::point::SweepPoint;
use tage_traces::snapshot::fnv1a64;

use crate::jsonish;

/// File extension of stored cells.
const CELL_EXTENSION: &str = "cell";

/// A directory of finished campaign cells, each stored as its rendered
/// timing-free report element under its content-addressed key.
#[derive(Debug)]
pub struct CellStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CellStore {
    /// Opens (creating if needed) a cell store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the [`std::io::Error`] from creating the directory.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<CellStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CellStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of loads served from a valid stored cell so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of loads that found no (valid) cell so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.{CELL_EXTENSION}"))
    }

    /// Loads the finished cell stored under `key`, if it exists and its
    /// identity fields match `point`. A missing, unreadable, corrupt or
    /// mismatched cell returns `None` — the caller recomputes (and
    /// rewrites) it.
    pub fn load_cell(&self, key: u64, point: &SweepPoint) -> Option<String> {
        let Some(rendered) = fs::read_to_string(self.path_for(key)).ok() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let expected = [
            ("predictor", point.predictor.label()),
            ("scheme", point.scheme.label()),
            ("suite", point.suite.name().to_string()),
            ("scenario", point.scenario.label().to_string()),
        ];
        for (field, value) in expected {
            if jsonish::string_field(&rendered, field).as_deref() != Some(value.as_str()) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(rendered)
    }

    /// Atomically stores a finished cell's rendered bytes under `key`: the
    /// cell is written to a process-unique temp file in the store directory
    /// and renamed into place, so concurrent workers and killed runs only
    /// ever leave complete cells.
    pub fn store_cell(&self, key: u64, rendered: &str) -> std::io::Result<()> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let temp = self.dir.join(format!(
            "{key:016x}.tmp.{}.{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut file = fs::File::create(&temp)?;
            file.write_all(rendered.as_bytes())?;
            file.sync_all()?;
        }
        let result = fs::rename(&temp, self.path_for(key));
        if result.is_err() {
            let _ = fs::remove_file(&temp);
        }
        result
    }
}

/// The content-addressed cell key: everything that determines a cell's
/// deterministic rendered bytes — the per-trace length, the
/// predictor/scheme/scenario labels, the suite's name plus its content
/// digest, and the phase-sampling plan when the suite carries one (sampled
/// suites are also *named* by their canonical `sample:` token, but the key
/// spells the plan out so cell identity never rests on the rename alone).
/// Campaign labels are excluded on purpose: they never reach the
/// cell bytes, so keying on them would only defeat cross-campaign sharing.
pub fn cell_key(branches_per_trace: usize, point: &SweepPoint) -> u64 {
    let sample = match point.suite.sampling() {
        Some(spec) => format!("|sample={}", spec.identity()),
        None => String::new(),
    };
    fnv1a64(
        format!(
            "cell|branches={branches_per_trace}|predictor={}|scheme={}|suite={}|suite_digest={:016x}|scenario={}{sample}",
            point.predictor.label(),
            point.scheme.label(),
            point.suite.name(),
            point.suite.digest(branches_per_trace),
            point.scenario.label(),
        )
        .as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_sim::point::{PredictorSpec, SchemeSpec};
    use tage_sim::scenarios::ScenarioSpec;
    use tage_traces::suites;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tage-cellstore-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn point() -> SweepPoint {
        SweepPoint {
            predictor: PredictorSpec::parse("tage-16k").unwrap(),
            scheme: SchemeSpec::parse("storage-free").unwrap(),
            suite: suites::cbp1_mini().into(),
            scenario: ScenarioSpec::Baseline,
        }
    }

    fn rendered_for(point: &SweepPoint) -> String {
        format!(
            "  {{\"predictor\": \"{}\", \"scheme\": \"{}\", \"suite\": \"{}\", \"scenario\": \"{}\"}}",
            point.predictor.label(),
            point.scheme.label(),
            point.suite.name(),
            point.scenario.label()
        )
    }

    #[test]
    fn cells_round_trip_verbatim_and_count() {
        let dir = temp_dir("roundtrip");
        let store = CellStore::new(&dir).unwrap();
        let point = point();
        let key = cell_key(1_000, &point);
        assert!(store.load_cell(key, &point).is_none());
        let rendered = rendered_for(&point);
        store.store_cell(key, &rendered).unwrap();
        assert_eq!(store.load_cell(key, &point).unwrap(), rendered);
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert_eq!(store.dir(), dir.as_path());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_cells_read_as_absent() {
        let dir = temp_dir("corrupt");
        let store = CellStore::new(&dir).unwrap();
        let point = point();
        let key = cell_key(1_000, &point);
        // Garbage bytes: no identity fields at all.
        store.store_cell(key, "not a cell").unwrap();
        assert!(store.load_cell(key, &point).is_none());
        // A structurally fine cell whose identity disagrees (key collision
        // or stale grid) is also rejected.
        let mut other = point.clone();
        other.predictor = PredictorSpec::parse("tage-64k").unwrap();
        store.store_cell(key, &rendered_for(&other)).unwrap();
        assert!(store.load_cell(key, &point).is_none());
        assert_eq!(store.hits(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_every_content_component() {
        let base = point();
        let key = cell_key(1_000, &base);
        assert_eq!(key, cell_key(1_000, &base));
        assert_ne!(key, cell_key(2_000, &base));
        let mut predictor = base.clone();
        predictor.predictor = PredictorSpec::parse("gshare").unwrap();
        assert_ne!(key, cell_key(1_000, &predictor));
        let mut scheme = base.clone();
        scheme.scheme = SchemeSpec::parse("jrs-classic").unwrap();
        assert_ne!(key, cell_key(1_000, &scheme));
        let mut suite = base.clone();
        suite.suite = suites::cbp2_like().into();
        assert_ne!(key, cell_key(1_000, &suite));
        let mut scenario = base.clone();
        scenario.scenario = ScenarioSpec::RecoveryEnergy;
        assert_ne!(key, cell_key(1_000, &scenario));
        // The sampling plan is part of cell identity: a sampled suite keys
        // differently from the full suite, and differently per plan.
        use tage_traces::source::{SamplingSpec, SourceSuite};
        let plan = SamplingSpec {
            interval: 500,
            k: 4,
            seed: 1,
        };
        let mut sampled = base.clone();
        sampled.suite = SourceSuite::from(suites::cbp1_mini()).with_sampling(plan);
        let sampled_key = cell_key(1_000, &sampled);
        assert_ne!(key, sampled_key);
        let mut other_plan = base.clone();
        other_plan.suite =
            SourceSuite::from(suites::cbp1_mini()).with_sampling(SamplingSpec { seed: 2, ..plan });
        assert_ne!(sampled_key, cell_key(1_000, &other_plan));
    }

    #[test]
    fn keys_track_suite_content_not_just_names() {
        use tage_traces::source::SourceSuite;
        use tage_traces::writer::TraceWriter;
        let dir = temp_dir("content");
        fs::create_dir_all(&dir).unwrap();
        let spec = &suites::cbp1_mini().traces()[0].clone();
        fs::write(
            dir.join("t.trace"),
            TraceWriter::to_binary_bytes(&spec.generate(500)),
        )
        .unwrap();
        let mut point_a = point();
        point_a.suite = SourceSuite::from_dir(&dir).unwrap();
        let key_a = cell_key(1_000, &point_a);
        // Rewriting the trace with different content (length) under the
        // same path changes the suite digest, hence the key: the stale
        // cell can never be served for the new content.
        fs::write(
            dir.join("t.trace"),
            TraceWriter::to_binary_bytes(&spec.generate(800)),
        )
        .unwrap();
        let mut point_b = point();
        point_b.suite = SourceSuite::from_dir(&dir).unwrap();
        assert_eq!(point_a.suite.name(), point_b.suite.name());
        assert_ne!(key_a, cell_key(1_000, &point_b));
        let _ = fs::remove_dir_all(&dir);
    }
}
