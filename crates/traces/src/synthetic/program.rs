//! The synthetic program model: static branches organised in routines, plus
//! a walker that turns the program into a dynamic branch trace.

use crate::record::{BranchKind, BranchRecord};
use crate::rng::SplitMix64;
use crate::trace::Trace;

use super::behavior::{BranchBehavior, GlobalOutcomeHistory};
use super::profile::WorkloadProfile;

/// Base address of the synthetic program's code.
const CODE_BASE: u64 = 0x0040_0000;
/// Address stride between routines.
const ROUTINE_STRIDE: u64 = 0x1000;
/// Address stride between branch instructions within a routine.
const BRANCH_STRIDE: u64 = 0x10;

/// A static conditional branch of the synthetic program.
#[derive(Debug, Clone)]
struct StaticBranch {
    pc: u64,
    behavior: BranchBehavior,
    /// Per-branch random stream so that behaviours are independent.
    rng: SplitMix64,
    /// The stream's construction-time state, kept so
    /// [`SyntheticProgram::rewind`] can restore it without re-instantiating
    /// the program.
    initial_rng: SplitMix64,
}

/// A routine: a straight-line run of static branches executed together.
#[derive(Debug, Clone)]
struct Routine {
    entry_pc: u64,
    branches: Vec<StaticBranch>,
    /// Relative execution weight (Zipf-like hotness).
    weight: f64,
}

/// A fully instantiated synthetic program.
///
/// Construct it from a [`WorkloadProfile`] and a seed, then call
/// [`SyntheticProgram::generate`] to produce a [`Trace`]. The same
/// `(profile, seed, length)` triple always yields the same trace.
#[derive(Debug, Clone)]
pub struct SyntheticProgram {
    routines: Vec<Routine>,
    cumulative_weights: Vec<f64>,
    emit_calls: bool,
    gap_mean: u32,
    walker_rng: SplitMix64,
    history: GlobalOutcomeHistory,
    current_routine: usize,
    routine_locality: f64,
    /// The construction seed, kept so [`SyntheticProgram::rewind`] can
    /// restore the walker stream in place.
    seed: u64,
}

impl SyntheticProgram {
    /// Instantiates a program from a profile and a seed.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not pass [`WorkloadProfile::validate`].
    pub fn from_profile(profile: &WorkloadProfile, seed: u64) -> Self {
        if let Err(reason) = profile.validate() {
            panic!("invalid workload profile: {reason}");
        }
        let mut rng = SplitMix64::new(seed ^ 0x5351_4E54_4845_5449);
        let routine_count = profile
            .static_branches
            .div_ceil(profile.routine_size)
            .max(1);
        let mut routines = Vec::with_capacity(routine_count);
        let mut remaining = profile.static_branches;
        for r in 0..routine_count {
            let entry_pc = CODE_BASE + r as u64 * ROUTINE_STRIDE;
            let in_this = profile.routine_size.min(remaining).max(1);
            remaining = remaining.saturating_sub(in_this);
            let mut branches = Vec::with_capacity(in_this);
            for b in 0..in_this {
                let pc = entry_pc + 0x40 + b as u64 * BRANCH_STRIDE;
                let behavior = sample_behavior(profile, &mut rng);
                let branch_rng = rng.split();
                branches.push(StaticBranch {
                    pc,
                    behavior,
                    initial_rng: branch_rng.clone(),
                    rng: branch_rng,
                });
            }
            // Zipf-like weight: hot routines get most of the execution.
            let weight = 1.0 / (1.0 + r as f64).powf(profile.routine_hotness);
            routines.push(Routine {
                entry_pc,
                branches,
                weight,
            });
        }
        let mut cumulative_weights = Vec::with_capacity(routines.len());
        let mut acc = 0.0;
        for routine in &routines {
            acc += routine.weight;
            cumulative_weights.push(acc);
        }
        SyntheticProgram {
            routines,
            cumulative_weights,
            emit_calls: profile.emit_calls,
            gap_mean: profile.gap_mean,
            walker_rng: SplitMix64::new(seed ^ 0x0000_5741_4C4B_4552_u64),
            history: GlobalOutcomeHistory::new(),
            current_routine: 0,
            routine_locality: profile.routine_locality,
            seed,
        }
    }

    /// Rewinds the program to its just-constructed state without touching
    /// the heap: every static branch's behaviour and random stream, the
    /// walker stream, the global history and the current routine go back to
    /// exactly what [`SyntheticProgram::from_profile`] produced, so the next
    /// walk replays the same record sequence bit for bit.
    pub fn rewind(&mut self) {
        for routine in &mut self.routines {
            for branch in &mut routine.branches {
                branch.behavior.reset();
                branch.rng = branch.initial_rng.clone();
            }
        }
        self.walker_rng = SplitMix64::new(self.seed ^ 0x0000_5741_4C4B_4552_u64);
        self.history = GlobalOutcomeHistory::new();
        self.current_routine = 0;
    }

    /// Number of routines in the program.
    pub fn routine_count(&self) -> usize {
        self.routines.len()
    }

    /// Number of static conditional branches in the program.
    pub fn static_branch_count(&self) -> usize {
        self.routines.iter().map(|r| r.branches.len()).sum()
    }

    /// Generates `branch_count` *conditional* branch records, advancing the
    /// program state. Call/return records emitted at routine boundaries are
    /// additional to `branch_count`.
    ///
    /// This is the one-shot convenience over [`StreamCursor`]: the records
    /// pushed here are bit-identical to pulling them one at a time from a
    /// cursor with the same target, in chunks of any size.
    pub fn generate(&mut self, branch_count: usize, trace: &mut Trace) {
        let mut cursor = StreamCursor::new(branch_count);
        while let Some(record) = cursor.next_record(self) {
            trace.push(record);
        }
    }

    fn pick_next_routine(&mut self) -> usize {
        if self.walker_rng.chance(self.routine_locality) {
            return self.current_routine;
        }
        let total = *self
            .cumulative_weights
            .last()
            .expect("programs always have at least one routine");
        let x = self.walker_rng.next_f64() * total;
        match self
            .cumulative_weights
            .binary_search_by(|w| w.partial_cmp(&x).expect("weights are finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.routines.len() - 1),
        }
    }
}

/// Where a [`StreamCursor`] stands inside the program walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WalkPhase {
    /// About to pick the next routine (or stop if the target is met).
    PickRoutine,
    /// Walking the branches of the current routine.
    Branch {
        routine: usize,
        entry_pc: u64,
        branch_len: usize,
        index: usize,
    },
}

/// A resumable walk over a [`SyntheticProgram`]: yields the exact record
/// sequence [`SyntheticProgram::generate`] would push, one record at a time,
/// so callers can stream a synthetic workload in chunks of any size without
/// materializing it.
///
/// The cursor is the generator behind [`crate::source::SyntheticSource`]; the
/// truncation point depends only on the cursor's *total* conditional-branch
/// target, never on how the pull is batched, which is what makes streamed
/// and materialized runs bit-identical.
#[derive(Debug, Clone)]
pub struct StreamCursor {
    /// Conditional branches still to emit.
    remaining: usize,
    phase: WalkPhase,
}

impl StreamCursor {
    /// A cursor that will emit exactly `conditional_branches` conditional
    /// records (plus the call/return records the profile asks for).
    pub fn new(conditional_branches: usize) -> Self {
        StreamCursor {
            remaining: conditional_branches,
            phase: WalkPhase::PickRoutine,
        }
    }

    /// Conditional branches the cursor has yet to emit.
    pub fn remaining_conditional(&self) -> usize {
        self.remaining
    }

    /// Advances the walk by one record; `None` once the conditional-branch
    /// target has been met (and the trailing return, if any, emitted).
    pub fn next_record(&mut self, program: &mut SyntheticProgram) -> Option<BranchRecord> {
        loop {
            match self.phase {
                WalkPhase::PickRoutine => {
                    if self.remaining == 0 {
                        return None;
                    }
                    let routine = program.pick_next_routine();
                    program.current_routine = routine;
                    let (entry_pc, branch_len) = {
                        let r = &program.routines[routine];
                        (r.entry_pc, r.branches.len())
                    };
                    self.phase = WalkPhase::Branch {
                        routine,
                        entry_pc,
                        branch_len,
                        index: 0,
                    };
                    if program.emit_calls {
                        let gap = program.walker_rng.next_gap(program.gap_mean, 255);
                        return Some(BranchRecord {
                            pc: entry_pc,
                            target: entry_pc + 0x40,
                            taken: true,
                            kind: BranchKind::Call,
                            gap,
                        });
                    }
                }
                WalkPhase::Branch {
                    routine,
                    entry_pc,
                    branch_len,
                    index,
                } => {
                    if index >= branch_len || self.remaining == 0 {
                        // Routine walked (or target met mid-routine): close it.
                        self.phase = WalkPhase::PickRoutine;
                        if program.emit_calls {
                            let gap = program.walker_rng.next_gap(program.gap_mean, 255);
                            return Some(BranchRecord {
                                pc: entry_pc + 0x40 + branch_len as u64 * BRANCH_STRIDE,
                                target: entry_pc,
                                taken: true,
                                kind: BranchKind::Return,
                                gap,
                            });
                        }
                        continue;
                    }
                    let gap = program.walker_rng.next_gap(program.gap_mean, 255);
                    let branch = &mut program.routines[routine].branches[index];
                    let taken = branch
                        .behavior
                        .next_outcome(&program.history, &mut branch.rng);
                    program.history.push(taken);
                    let pc = branch.pc;
                    let target = if taken { pc + 0x80 } else { pc + 4 };
                    self.phase = WalkPhase::Branch {
                        routine,
                        entry_pc,
                        branch_len,
                        index: index + 1,
                    };
                    self.remaining -= 1;
                    return Some(BranchRecord {
                        pc,
                        target,
                        taken,
                        kind: BranchKind::Conditional,
                        gap,
                    });
                }
            }
        }
    }

    /// Fills the front of `buf` with the next records of the walk and
    /// returns how many were written (0 once the target is met).
    ///
    /// This produces exactly the records `next_record` would, but fills each
    /// routine's run of conditional branches in one tight inner loop instead
    /// of re-dispatching on the walk phase per record — the fast path behind
    /// [`crate::source::SyntheticSource`].
    pub fn next_batch(
        &mut self,
        program: &mut SyntheticProgram,
        buf: &mut [BranchRecord],
    ) -> usize {
        let mut filled = 0;
        while filled < buf.len() {
            match self.phase {
                WalkPhase::PickRoutine => {
                    if self.remaining == 0 {
                        break;
                    }
                    let routine = program.pick_next_routine();
                    program.current_routine = routine;
                    let (entry_pc, branch_len) = {
                        let r = &program.routines[routine];
                        (r.entry_pc, r.branches.len())
                    };
                    self.phase = WalkPhase::Branch {
                        routine,
                        entry_pc,
                        branch_len,
                        index: 0,
                    };
                    if program.emit_calls {
                        let gap = program.walker_rng.next_gap(program.gap_mean, 255);
                        buf[filled] = BranchRecord {
                            pc: entry_pc,
                            target: entry_pc + 0x40,
                            taken: true,
                            kind: BranchKind::Call,
                            gap,
                        };
                        filled += 1;
                    }
                }
                WalkPhase::Branch {
                    routine,
                    entry_pc,
                    branch_len,
                    index,
                } => {
                    if index >= branch_len || self.remaining == 0 {
                        self.phase = WalkPhase::PickRoutine;
                        if program.emit_calls {
                            let gap = program.walker_rng.next_gap(program.gap_mean, 255);
                            buf[filled] = BranchRecord {
                                pc: entry_pc + 0x40 + branch_len as u64 * BRANCH_STRIDE,
                                target: entry_pc,
                                taken: true,
                                kind: BranchKind::Return,
                                gap,
                            };
                            filled += 1;
                        }
                        continue;
                    }
                    // Tight inner loop: emit consecutive branches of this
                    // routine until the routine, the conditional target or
                    // the buffer runs out. Identical per-record arithmetic
                    // and RNG consumption order (gap before outcome) as
                    // `next_record`.
                    let run = (branch_len - index)
                        .min(self.remaining)
                        .min(buf.len() - filled);
                    let SyntheticProgram {
                        routines,
                        walker_rng,
                        history,
                        gap_mean,
                        ..
                    } = program;
                    let branches = &mut routines[routine].branches[index..index + run];
                    for (slot, branch) in buf[filled..filled + run].iter_mut().zip(branches) {
                        let gap = walker_rng.next_gap(*gap_mean, 255);
                        let taken = branch.behavior.next_outcome(history, &mut branch.rng);
                        history.push(taken);
                        let pc = branch.pc;
                        let target = if taken { pc + 0x80 } else { pc + 4 };
                        *slot = BranchRecord {
                            pc,
                            target,
                            taken,
                            kind: BranchKind::Conditional,
                            gap,
                        };
                    }
                    filled += run;
                    self.remaining -= run;
                    self.phase = WalkPhase::Branch {
                        routine,
                        entry_pc,
                        branch_len,
                        index: index + run,
                    };
                }
            }
        }
        filled
    }
}

fn sample_behavior(profile: &WorkloadProfile, rng: &mut SplitMix64) -> BranchBehavior {
    let mix = &profile.mix;
    let total = mix.total();
    let mut x = rng.next_f64() * total;

    x -= mix.loop_weight;
    if x < 0.0 {
        let (lo, hi) = profile.loop_period_range;
        // Most loops are short inner loops whose exits a history-based
        // predictor captures; the rest have longer, rarely-exiting trip
        // counts. Uniformly random medium trip counts would make loop exits
        // an unrealistically large misprediction source.
        let period = if rng.chance(0.6) {
            lo + rng.next_below(u64::from((hi - lo).min(6) + 1)) as u32
        } else {
            let long_lo = lo.max(hi / 2);
            long_lo + rng.next_below(u64::from(hi - long_lo + 1)) as u32
        };
        return BranchBehavior::new_loop(period);
    }
    x -= mix.biased_weight;
    if x < 0.0 {
        let (lo, hi) = profile.bias_range;
        // Squaring the uniform draw skews biases towards the strong end:
        // most data-dependent branches in real codes are heavily biased and
        // only a tail is genuinely hard.
        let p = hi - rng.next_f64().powi(3) * (hi - lo);
        // Half of the biased branches are biased not-taken instead of taken.
        let p = if rng.chance(0.5) { p } else { 1.0 - p };
        return BranchBehavior::biased(p);
    }
    x -= mix.pattern_weight;
    if x < 0.0 {
        let (lo, hi) = profile.pattern_length_range;
        // Skew pattern lengths towards the short end: long repeating
        // sequences are rarer in real code and much harder to capture.
        let span = (hi - lo) as f64;
        let len = lo + (rng.next_f64().powi(2) * (span + 0.999)) as usize;
        // Real loop bodies mostly repeat a dominant direction with a few
        // deviating positions; fully random patterns would make the joint
        // phase space of a routine unlearnable for any history-based
        // predictor.
        let dominant = rng.chance(0.7);
        let pattern = (0..len.max(1))
            .map(|_| {
                if rng.chance(0.88) {
                    dominant
                } else {
                    !dominant
                }
            })
            .collect::<Vec<_>>();
        return BranchBehavior::pattern(if pattern.iter().all(|&b| !b) {
            vec![true]
        } else {
            pattern
        });
    }
    x -= mix.history_weight;
    if x < 0.0 {
        let (lo, hi) = profile.history_lag_range;
        let max_lag = lo + rng.next_below((hi - lo + 1) as u64) as usize;
        let lag_count = 1 + rng.next_below(2) as usize;
        let lags = (0..lag_count)
            .map(|_| 1 + rng.next_below(max_lag.max(1) as u64) as usize)
            .collect();
        return BranchBehavior::history_parity(lags, rng.chance(0.5), profile.noise);
    }
    x -= mix.path_weight;
    if x < 0.0 {
        let (lo, hi) = profile.path_depth_range;
        let depth = lo + rng.next_below((hi - lo + 1) as u64) as usize;
        return BranchBehavior::path_hash(depth.max(1), rng.next_u64(), profile.noise);
    }
    // Phased behaviour: a strongly biased phase alternating with a phase
    // biased the other way — the predictor has to re-learn at each boundary.
    let even = BranchBehavior::biased(0.97);
    let odd = BranchBehavior::biased(0.15);
    BranchBehavior::phased(even, odd, profile.phase_period)
}

/// Convenience builder tying a name, a profile and a seed together.
///
/// # Example
///
/// ```
/// use tage_traces::synthetic::{SyntheticTraceBuilder, WorkloadProfile};
///
/// let trace = SyntheticTraceBuilder::new("fp-demo", WorkloadProfile::fp_like(), 1).build(1_000);
/// assert_eq!(trace.name(), "fp-demo");
/// let conditional = trace.iter().filter(|r| r.kind.is_conditional()).count();
/// assert_eq!(conditional, 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTraceBuilder {
    name: String,
    profile: WorkloadProfile,
    seed: u64,
}

impl SyntheticTraceBuilder {
    /// Creates a builder for the given name, profile and seed.
    pub fn new(name: impl Into<String>, profile: WorkloadProfile, seed: u64) -> Self {
        SyntheticTraceBuilder {
            name: name.into(),
            profile,
            seed,
        }
    }

    /// The workload profile this builder uses.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Generates a trace containing `conditional_branches` conditional branch
    /// records (plus call/return records if the profile asks for them).
    pub fn build(&self, conditional_branches: usize) -> Trace {
        let mut program = SyntheticProgram::from_profile(&self.profile, self.seed);
        let mut trace = Trace::with_capacity(
            self.name.clone(),
            conditional_branches + conditional_branches / 4,
        );
        program.generate(conditional_branches, &mut trace);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchKind;

    #[test]
    fn program_instantiates_requested_footprint() {
        let profile = WorkloadProfile {
            static_branches: 37,
            routine_size: 5,
            ..WorkloadProfile::integer_like()
        };
        let program = SyntheticProgram::from_profile(&profile, 3);
        assert_eq!(program.static_branch_count(), 37);
        assert_eq!(program.routine_count(), 8);
    }

    #[test]
    #[should_panic(expected = "invalid workload profile")]
    fn invalid_profile_panics() {
        let mut profile = WorkloadProfile::integer_like();
        profile.static_branches = 0;
        SyntheticProgram::from_profile(&profile, 0);
    }

    #[test]
    fn stream_cursor_matches_one_shot_generation_at_any_chunking() {
        for mut profile in [WorkloadProfile::integer_like(), WorkloadProfile::fp_like()] {
            for emit_calls in [false, true] {
                profile.emit_calls = emit_calls;
                let mut reference = SyntheticProgram::from_profile(&profile, 77);
                let mut expected = Trace::new("ref");
                reference.generate(2_500, &mut expected);

                // Pull the same walk through a cursor in awkward chunk sizes.
                let mut program = SyntheticProgram::from_profile(&profile, 77);
                let mut cursor = StreamCursor::new(2_500);
                let mut streamed = Vec::new();
                let mut chunk = 1usize;
                'outer: loop {
                    for _ in 0..chunk {
                        match cursor.next_record(&mut program) {
                            Some(record) => streamed.push(record),
                            None => break 'outer,
                        }
                    }
                    chunk = (chunk * 3 + 1) % 97 + 1;
                }
                assert_eq!(streamed, expected.records(), "emit_calls = {emit_calls}");
                assert_eq!(cursor.remaining_conditional(), 0);
            }
        }
    }

    #[test]
    fn batched_cursor_matches_one_shot_generation_at_any_chunking() {
        for mut profile in [WorkloadProfile::integer_like(), WorkloadProfile::fp_like()] {
            for emit_calls in [false, true] {
                profile.emit_calls = emit_calls;
                let mut reference = SyntheticProgram::from_profile(&profile, 78);
                let mut expected = Trace::new("ref");
                reference.generate(2_500, &mut expected);

                let mut program = SyntheticProgram::from_profile(&profile, 78);
                let mut cursor = StreamCursor::new(2_500);
                let mut streamed = Vec::new();
                let mut buf = [BranchRecord::default(); 97];
                let mut chunk = 1usize;
                loop {
                    let n = cursor.next_batch(&mut program, &mut buf[..chunk]);
                    if n == 0 {
                        break;
                    }
                    streamed.extend_from_slice(&buf[..n]);
                    chunk = (chunk * 5 + 2) % 97 + 1;
                }
                assert_eq!(streamed, expected.records(), "emit_calls = {emit_calls}");
                assert_eq!(cursor.remaining_conditional(), 0);
            }
        }
    }

    #[test]
    fn rewind_replays_the_exact_record_sequence() {
        for mut profile in [
            WorkloadProfile::integer_like(),
            WorkloadProfile::server_like(),
        ] {
            profile.emit_calls = true;
            let mut program = SyntheticProgram::from_profile(&profile, 91);
            let mut first = Trace::new("first");
            program.generate(3_000, &mut first);
            program.rewind();
            let mut second = Trace::new("second");
            program.generate(3_000, &mut second);
            assert_eq!(first.records(), second.records());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let builder = SyntheticTraceBuilder::new("d", WorkloadProfile::integer_like(), 42);
        let a = builder.build(2_000);
        let b = builder.build(2_000);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn different_seeds_produce_different_traces() {
        let profile = WorkloadProfile::integer_like();
        let a = SyntheticTraceBuilder::new("a", profile.clone(), 1).build(2_000);
        let b = SyntheticTraceBuilder::new("b", profile, 2).build(2_000);
        assert_ne!(a.records(), b.records());
    }

    #[test]
    fn requested_conditional_count_is_exact() {
        let trace = SyntheticTraceBuilder::new("c", WorkloadProfile::fp_like(), 5).build(3_000);
        let conditional = trace.iter().filter(|r| r.kind.is_conditional()).count();
        assert_eq!(conditional, 3_000);
    }

    #[test]
    fn calls_and_returns_are_emitted_when_requested() {
        let mut profile = WorkloadProfile::integer_like();
        profile.emit_calls = true;
        let trace = SyntheticTraceBuilder::new("c", profile.clone(), 5).build(1_000);
        assert!(trace.iter().any(|r| r.kind == BranchKind::Call));
        assert!(trace.iter().any(|r| r.kind == BranchKind::Return));

        profile.emit_calls = false;
        let trace = SyntheticTraceBuilder::new("c", profile, 5).build(1_000);
        assert!(trace.iter().all(|r| r.kind.is_conditional()));
    }

    #[test]
    fn static_footprint_of_generated_trace_is_bounded_by_profile() {
        let profile = WorkloadProfile {
            static_branches: 50,
            ..WorkloadProfile::integer_like()
        };
        let trace = SyntheticTraceBuilder::new("f", profile, 9).build(5_000);
        let stats = trace.stats();
        assert!(
            stats.static_conditional <= 50,
            "{}",
            stats.static_conditional
        );
        // Most of the footprint should actually be exercised.
        assert!(
            stats.static_conditional >= 20,
            "{}",
            stats.static_conditional
        );
    }

    #[test]
    fn server_profile_touches_many_more_static_branches_than_fp() {
        let fp = SyntheticTraceBuilder::new("fp", WorkloadProfile::fp_like(), 11).build(20_000);
        let srv =
            SyntheticTraceBuilder::new("srv", WorkloadProfile::server_like(), 11).build(20_000);
        assert!(
            srv.stats().static_conditional > 4 * fp.stats().static_conditional,
            "server {} vs fp {}",
            srv.stats().static_conditional,
            fp.stats().static_conditional
        );
    }

    #[test]
    fn taken_rate_is_sane() {
        for profile in [
            WorkloadProfile::fp_like(),
            WorkloadProfile::integer_like(),
            WorkloadProfile::multimedia_like(),
            WorkloadProfile::server_like(),
        ] {
            let trace = SyntheticTraceBuilder::new("t", profile, 13).build(10_000);
            let rate = trace.stats().taken_rate();
            assert!((0.2..0.95).contains(&rate), "taken rate {rate}");
        }
    }

    #[test]
    fn gaps_respect_profile_mean_roughly() {
        let mut profile = WorkloadProfile::integer_like();
        profile.gap_mean = 10;
        let trace = SyntheticTraceBuilder::new("g", profile, 21).build(10_000);
        let stats = trace.stats();
        let mean_gap = stats.instructions as f64 / stats.branches as f64 - 1.0;
        assert!((6.0..14.0).contains(&mean_gap), "mean gap {mean_gap}");
    }
}
