//! Workload profiles: the knobs that shape a synthetic trace.

/// Relative weights of the behaviour families within a workload.
///
/// Weights do not need to sum to one; they are normalised when branches are
/// instantiated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorMix {
    /// Weight of loop-exit branches.
    pub loop_weight: f64,
    /// Weight of Bernoulli (biased random) branches.
    pub biased_weight: f64,
    /// Weight of fixed-pattern branches.
    pub pattern_weight: f64,
    /// Weight of history-parity branches (predictable with enough history).
    pub history_weight: f64,
    /// Weight of path-hash branches.
    pub path_weight: f64,
    /// Weight of phase-changing branches.
    pub phased_weight: f64,
}

impl BehaviorMix {
    /// A mix dominated by loops and patterns: very predictable, typical of
    /// floating-point kernels.
    pub fn loop_dominated() -> Self {
        BehaviorMix {
            loop_weight: 0.45,
            biased_weight: 0.05,
            pattern_weight: 0.35,
            history_weight: 0.12,
            path_weight: 0.03,
            phased_weight: 0.0,
        }
    }

    /// A balanced integer-code mix with a noticeable correlated component.
    pub fn integer() -> Self {
        BehaviorMix {
            loop_weight: 0.30,
            biased_weight: 0.14,
            pattern_weight: 0.30,
            history_weight: 0.16,
            path_weight: 0.05,
            phased_weight: 0.05,
        }
    }

    /// A multimedia-like mix with a large data-dependent (biased) component.
    pub fn multimedia() -> Self {
        BehaviorMix {
            loop_weight: 0.28,
            biased_weight: 0.30,
            pattern_weight: 0.22,
            history_weight: 0.10,
            path_weight: 0.05,
            phased_weight: 0.05,
        }
    }

    /// A server-like mix: lots of lightly-biased branches spread over a huge
    /// footprint, with phase changes.
    pub fn server() -> Self {
        BehaviorMix {
            loop_weight: 0.22,
            biased_weight: 0.20,
            pattern_weight: 0.28,
            history_weight: 0.15,
            path_weight: 0.05,
            phased_weight: 0.10,
        }
    }

    /// Sum of the weights.
    pub fn total(&self) -> f64 {
        self.loop_weight
            + self.biased_weight
            + self.pattern_weight
            + self.history_weight
            + self.path_weight
            + self.phased_weight
    }
}

impl Default for BehaviorMix {
    fn default() -> Self {
        BehaviorMix::integer()
    }
}

/// Every knob that shapes a synthetic workload.
///
/// A profile plus a seed and a length fully determines a trace.
///
/// # Example
///
/// ```
/// use tage_traces::synthetic::{SyntheticTraceBuilder, WorkloadProfile};
///
/// let profile = WorkloadProfile::integer_like();
/// let trace = SyntheticTraceBuilder::new("demo", profile, 7).build(5_000);
/// let conditional = trace.iter().filter(|r| r.kind.is_conditional()).count();
/// assert_eq!(conditional, 5_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Total number of static conditional branches in the program.
    pub static_branches: usize,
    /// Number of branches per routine (basic-block run).
    pub routine_size: usize,
    /// Probability of re-executing the current routine rather than moving to
    /// another one (temporal locality).
    pub routine_locality: f64,
    /// Zipf-like exponent concentrating execution on hot routines
    /// (`0.0` = uniform, larger = more concentrated).
    pub routine_hotness: f64,
    /// Behaviour-family mix.
    pub mix: BehaviorMix,
    /// Range of loop trip counts `[min, max]`.
    pub loop_period_range: (u32, u32),
    /// Range of taken probabilities for biased branches `[min, max]`.
    pub bias_range: (f64, f64),
    /// Range of pattern lengths `[min, max]`.
    pub pattern_length_range: (usize, usize),
    /// Range of maximum history lags for history-parity branches `[min, max]`
    /// (in branches). Lags larger than a predictor's maximum history length
    /// make the branch unpredictable for that predictor.
    pub history_lag_range: (usize, usize),
    /// Range of path depths for path-hash branches `[min, max]`.
    pub path_depth_range: (usize, usize),
    /// Outcome noise applied to the deterministic behaviours.
    pub noise: f64,
    /// Mean number of non-branch instructions between branches.
    pub gap_mean: u32,
    /// Number of executions per phase for phase-changing branches.
    pub phase_period: u32,
    /// Whether to emit call/return records at routine boundaries.
    pub emit_calls: bool,
}

impl WorkloadProfile {
    /// Floating-point-kernel-like profile: tiny footprint, loop dominated,
    /// very predictable.
    pub fn fp_like() -> Self {
        WorkloadProfile {
            static_branches: 120,
            routine_size: 8,
            routine_locality: 0.95,
            routine_hotness: 1.2,
            mix: BehaviorMix::loop_dominated(),
            loop_period_range: (8, 200),
            bias_range: (0.97, 0.9995),
            pattern_length_range: (3, 10),
            history_lag_range: (1, 8),
            path_depth_range: (4, 10),
            noise: 0.001,
            gap_mean: 9,
            phase_period: 50_000,
            emit_calls: true,
        }
    }

    /// Integer-code-like profile: moderate footprint, correlated branches
    /// needing medium history lengths.
    pub fn integer_like() -> Self {
        WorkloadProfile {
            static_branches: 600,
            routine_size: 6,
            routine_locality: 0.92,
            routine_hotness: 1.0,
            mix: BehaviorMix::integer(),
            loop_period_range: (2, 40),
            bias_range: (0.93, 0.999),
            pattern_length_range: (2, 20),
            history_lag_range: (1, 10),
            path_depth_range: (4, 12),
            noise: 0.002,
            gap_mean: 6,
            phase_period: 3_000,
            emit_calls: true,
        }
    }

    /// Multimedia-like profile: biased data-dependent branches, moderate
    /// footprint, an intrinsically unpredictable component.
    pub fn multimedia_like() -> Self {
        WorkloadProfile {
            static_branches: 400,
            routine_size: 7,
            routine_locality: 0.92,
            routine_hotness: 1.0,
            mix: BehaviorMix::multimedia(),
            loop_period_range: (4, 64),
            bias_range: (0.80, 0.995),
            pattern_length_range: (2, 16),
            history_lag_range: (1, 10),
            path_depth_range: (4, 12),
            noise: 0.004,
            gap_mean: 7,
            phase_period: 2_500,
            emit_calls: true,
        }
    }

    /// Server-like profile: thousands of static branches, low locality,
    /// frequent phase changes — stresses predictor capacity.
    pub fn server_like() -> Self {
        WorkloadProfile {
            static_branches: 6000,
            routine_size: 5,
            routine_locality: 0.80,
            routine_hotness: 0.7,
            mix: BehaviorMix::server(),
            loop_period_range: (2, 20),
            bias_range: (0.95, 0.999),
            pattern_length_range: (2, 8),
            history_lag_range: (1, 8),
            path_depth_range: (4, 10),
            noise: 0.002,
            gap_mean: 5,
            phase_period: 1_500,
            emit_calls: true,
        }
    }

    /// Validates the profile, returning a description of the first problem
    /// found, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.static_branches == 0 {
            return Err("static_branches must be non-zero".to_string());
        }
        if self.routine_size == 0 {
            return Err("routine_size must be non-zero".to_string());
        }
        if !(0.0..=1.0).contains(&self.routine_locality) {
            return Err("routine_locality must be within [0, 1]".to_string());
        }
        if self.mix.total() <= 0.0 {
            return Err("behaviour mix weights must sum to a positive value".to_string());
        }
        if self.loop_period_range.0 == 0 || self.loop_period_range.0 > self.loop_period_range.1 {
            return Err("loop_period_range must be a non-empty range starting at >= 1".to_string());
        }
        if self.pattern_length_range.0 == 0
            || self.pattern_length_range.0 > self.pattern_length_range.1
        {
            return Err(
                "pattern_length_range must be a non-empty range starting at >= 1".to_string(),
            );
        }
        if self.bias_range.0 > self.bias_range.1 {
            return Err("bias_range must be ordered".to_string());
        }
        if self.history_lag_range.0 > self.history_lag_range.1 {
            return Err("history_lag_range must be ordered".to_string());
        }
        if self.path_depth_range.0 > self.path_depth_range.1 {
            return Err("path_depth_range must be ordered".to_string());
        }
        if self.phase_period == 0 {
            return Err("phase_period must be non-zero".to_string());
        }
        Ok(())
    }
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile::integer_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_profiles_are_valid() {
        for profile in [
            WorkloadProfile::fp_like(),
            WorkloadProfile::integer_like(),
            WorkloadProfile::multimedia_like(),
            WorkloadProfile::server_like(),
            WorkloadProfile::default(),
        ] {
            assert!(profile.validate().is_ok(), "{profile:?}");
        }
    }

    #[test]
    fn preset_mixes_have_positive_total() {
        for mix in [
            BehaviorMix::loop_dominated(),
            BehaviorMix::integer(),
            BehaviorMix::multimedia(),
            BehaviorMix::server(),
        ] {
            assert!(mix.total() > 0.0);
        }
    }

    #[test]
    fn validation_catches_bad_profiles() {
        let mut p = WorkloadProfile::integer_like();
        p.static_branches = 0;
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.routine_size = 0;
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.routine_locality = 1.5;
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.mix = BehaviorMix {
            loop_weight: 0.0,
            biased_weight: 0.0,
            pattern_weight: 0.0,
            history_weight: 0.0,
            path_weight: 0.0,
            phased_weight: 0.0,
        };
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.loop_period_range = (0, 10);
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.loop_period_range = (10, 2);
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.bias_range = (0.9, 0.1);
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.history_lag_range = (100, 10);
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.path_depth_range = (100, 10);
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.pattern_length_range = (0, 4);
        assert!(p.validate().is_err());

        let mut p = WorkloadProfile::integer_like();
        p.phase_period = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn server_profile_has_much_larger_footprint_than_fp() {
        assert!(
            WorkloadProfile::server_like().static_branches
                > 10 * WorkloadProfile::fp_like().static_branches
        );
    }
}
