//! Tagged-component entries.

use core::fmt;

use tage_predictors::counter::{SignedCounter, UnsignedCounter};

/// One entry of a tagged TAGE component: a signed prediction counter `ctr`
/// whose sign provides the prediction, a partial `tag`, and an unsigned
/// useful counter `u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedEntry {
    /// Partial tag identifying the (PC, history) pair that owns the entry.
    pub tag: u16,
    /// Signed prediction counter (3 bits in the paper).
    pub ctr: SignedCounter,
    /// Useful counter (2 bits in the paper); doubles as an age counter and
    /// gates allocation (only `u == 0` entries may be stolen).
    pub useful: UnsignedCounter,
}

impl TaggedEntry {
    /// Creates an empty (never-allocated) entry.
    pub fn new(counter_bits: u8, useful_bits: u8) -> Self {
        TaggedEntry {
            tag: 0,
            ctr: SignedCounter::new(counter_bits),
            useful: UnsignedCounter::new(useful_bits),
        }
    }

    /// Re-initialises the entry for a newly allocated (PC, history) pair:
    /// the prediction counter is set to *weak correct* for the resolved
    /// outcome and the useful counter to zero (strong not-useful).
    pub fn allocate(&mut self, tag: u16, taken: bool) {
        self.tag = tag;
        self.ctr.set_weak(taken);
        self.useful.reset();
    }

    /// Returns `true` if this entry may be reclaimed by the allocation
    /// policy (its useful counter is null).
    pub fn is_allocatable(&self) -> bool {
        self.useful.is_zero()
    }
}

impl fmt::Display for TaggedEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tag={:#x} ctr={} u={}",
            self.tag,
            self.ctr.value(),
            self.useful.value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entry_is_allocatable_and_weak() {
        let e = TaggedEntry::new(3, 2);
        assert!(e.is_allocatable());
        assert!(e.ctr.is_weak());
        assert_eq!(e.tag, 0);
    }

    #[test]
    fn allocate_sets_weak_correct_and_clears_useful() {
        let mut e = TaggedEntry::new(3, 2);
        e.useful.increment();
        e.allocate(0x1ab, true);
        assert_eq!(e.tag, 0x1ab);
        assert!(e.ctr.predict_taken());
        assert!(e.ctr.is_weak());
        assert!(e.useful.is_zero());

        e.allocate(0x2cd, false);
        assert!(!e.ctr.predict_taken());
        assert!(e.ctr.is_weak());
    }

    #[test]
    fn usefulness_blocks_allocation() {
        let mut e = TaggedEntry::new(3, 2);
        e.useful.increment();
        assert!(!e.is_allocatable());
        e.useful.decrement();
        assert!(e.is_allocatable());
    }

    #[test]
    fn display_shows_fields() {
        let e = TaggedEntry::new(3, 2);
        let s = format!("{e}");
        assert!(s.contains("tag="));
        assert!(s.contains("ctr="));
    }
}
