//! Streaming branch-record sources: out-of-core trace ingestion.
//!
//! The simulation stack used to demand a fully materialized
//! [`Trace`] (`Vec<BranchRecord>`) before a single prediction ran, which
//! caps the workload size at available memory. [`BranchSource`] replaces
//! that contract with a chunked pull API — [`BranchSource::next_batch`]
//! fills a caller-provided buffer and returns how many records it wrote —
//! so the engine only ever holds one bounded batch of records at a time.
//!
//! Three production sources cover the workload spectrum:
//!
//! * [`SliceSource`] — zero-copy adapter over an existing in-memory trace
//!   (this is what `SimEngine::run(&Trace)` wraps);
//! * [`BinaryFileSource`] — buffered chunked reader over the on-disk binary
//!   format of [`crate::writer::TraceWriter`], holding exactly one
//!   fixed-size chunk in memory regardless of file size, with corrupt and
//!   truncated records reported at their byte offset;
//! * [`SyntheticSource`] — generates a [`crate::suites::TraceSpec`]-style
//!   workload on the fly through [`crate::synthetic::StreamCursor`], bit-
//!   identical to the materialized generator but without the up-front
//!   `Vec<Trace>`.
//!
//! [`Take`] bounds any source to a record budget (the building block of
//! history-warmed segment sharding), and [`SourceSpec`] / [`SourceSuite`]
//! describe *how to open* sources so suite and campaign runners can re-open
//! independent streams per worker.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::decoder::{self, DecodedSource};
use crate::format::{decode_record, FormatError, RECORD_BYTES};
use crate::reader::read_binary_header;
use crate::record::BranchRecord;
use crate::suites::{Suite, TraceSpec};
use crate::synthetic::{StreamCursor, SyntheticProgram, WorkloadProfile};
use crate::trace::Trace;

/// A stream of [`BranchRecord`]s consumed in caller-sized batches.
///
/// Implementations hand out records strictly in trace order;
/// [`next_batch`](BranchSource::next_batch) returning `Ok(0)` (with a
/// non-empty buffer) signals the end of the stream.
/// [`reset`](BranchSource::reset) rewinds to the first record, so one
/// source can drive several runs.
///
/// # Example
///
/// ```
/// use tage_traces::source::{BranchSource, SliceSource};
/// use tage_traces::{BranchRecord, Trace};
///
/// let trace = Trace::from_records(
///     "toy",
///     (0..10u64).map(|i| BranchRecord::conditional(0x1000 + 4 * i, i % 2 == 0)),
/// );
/// let mut source = SliceSource::from_trace(&trace);
/// assert_eq!(source.len_hint(), Some(10));
///
/// let mut batch = [BranchRecord::default(); 4];
/// let mut total = 0;
/// loop {
///     let filled = source.next_batch(&mut batch).unwrap();
///     if filled == 0 {
///         break;
///     }
///     total += filled;
/// }
/// assert_eq!(total, 10);
///
/// source.reset().unwrap();
/// assert_eq!(source.next_batch(&mut batch).unwrap(), 4);
/// ```
pub trait BranchSource {
    /// A stable name for the stream (trace name, file header name, ...).
    fn name(&self) -> &str;

    /// Fills the front of `buf` with the next records of the stream and
    /// returns how many were written. `Ok(0)` means the stream is exhausted
    /// (provided `buf` is non-empty).
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] when the backing store fails or holds a
    /// corrupt record; in-memory and synthetic sources never fail.
    fn next_batch(&mut self, buf: &mut [BranchRecord]) -> Result<usize, FormatError>;

    /// Rewinds the stream to its first record.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] when the backing store cannot seek.
    fn reset(&mut self) -> Result<(), FormatError>;

    /// Total number of records the stream will yield, when cheaply known.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Skips up to `n` records, returning how many were actually skipped
    /// (less than `n` only when the stream ends first). The default pulls
    /// and discards batches; seekable sources override this with O(1)
    /// repositioning.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] when the underlying pulls fail.
    fn skip_records(&mut self, n: u64) -> Result<u64, FormatError> {
        let mut scratch = [BranchRecord::default(); 128];
        let mut skipped = 0u64;
        while skipped < n {
            let want = ((n - skipped).min(scratch.len() as u64)) as usize;
            let got = self.next_batch(&mut scratch[..want])?;
            if got == 0 {
                break;
            }
            skipped += got as u64;
        }
        Ok(skipped)
    }
}

impl<S: BranchSource + ?Sized> BranchSource for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_batch(&mut self, buf: &mut [BranchRecord]) -> Result<usize, FormatError> {
        (**self).next_batch(buf)
    }

    fn reset(&mut self) -> Result<(), FormatError> {
        (**self).reset()
    }

    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }

    fn skip_records(&mut self, n: u64) -> Result<u64, FormatError> {
        (**self).skip_records(n)
    }
}

/// Zero-copy [`BranchSource`] over records that are already in memory.
///
/// Batches are memcpy'd out of the borrowed slice; the source itself
/// allocates nothing and never fails.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    name: &'a str,
    records: &'a [BranchRecord],
    position: usize,
}

impl<'a> SliceSource<'a> {
    /// A source over a named record slice.
    pub fn new(name: &'a str, records: &'a [BranchRecord]) -> Self {
        SliceSource {
            name,
            records,
            position: 0,
        }
    }

    /// A source over an existing trace (borrowing its name and records).
    pub fn from_trace(trace: &'a Trace) -> Self {
        SliceSource::new(trace.name(), trace.records())
    }
}

impl BranchSource for SliceSource<'_> {
    fn name(&self) -> &str {
        self.name
    }

    fn next_batch(&mut self, buf: &mut [BranchRecord]) -> Result<usize, FormatError> {
        let remaining = &self.records[self.position..];
        let n = remaining.len().min(buf.len());
        buf[..n].copy_from_slice(&remaining[..n]);
        self.position += n;
        Ok(n)
    }

    fn reset(&mut self) -> Result<(), FormatError> {
        self.position = 0;
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }

    fn skip_records(&mut self, n: u64) -> Result<u64, FormatError> {
        let remaining = (self.records.len() - self.position) as u64;
        let skip = n.min(remaining);
        self.position += skip as usize;
        Ok(skip)
    }
}

/// Default number of records a [`BinaryFileSource`] holds in its chunk
/// buffer (≈ 84 KiB at 21 bytes per record).
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

/// Chunked [`BranchSource`] over a binary trace file.
///
/// The file is read through one fixed-size byte buffer allocated at open
/// time; resident trace memory is therefore bounded by the chunk size no
/// matter how large the file grows. Works with both counted traces
/// ([`crate::writer::TraceWriter`]) and streaming traces
/// ([`crate::writer::StreamingTraceWriter`]); corrupt kind bytes and
/// truncated tails surface as [`FormatError`]s carrying the byte offset of
/// the offending record.
#[derive(Debug)]
pub struct BinaryFileSource {
    file: File,
    path: PathBuf,
    name: String,
    data_offset: u64,
    declared_records: Option<u64>,
    file_len: u64,
    /// Records handed out so far.
    position: u64,
    /// The fixed chunk buffer (the only per-source allocation).
    chunk: Vec<u8>,
    /// Sticky corruption state: once a bad record is reported the stream is
    /// poisoned — further pulls re-report the same error instead of
    /// resyncing wrongly or pretending the stream ended cleanly.
    poison: Option<Poison>,
}

/// A remembered corruption error (see [`BinaryFileSource::next_batch`]).
#[derive(Debug, Clone, Copy)]
enum Poison {
    Truncated { offset: u64 },
    InvalidKind { byte: u8, offset: u64 },
}

impl Poison {
    fn to_error(self) -> FormatError {
        match self {
            Poison::Truncated { offset } => FormatError::TruncatedRecord { offset },
            Poison::InvalidKind { byte, offset } => FormatError::InvalidKind { byte, offset },
        }
    }
}

impl BinaryFileSource {
    /// Opens a binary trace file with the [`DEFAULT_CHUNK_RECORDS`] chunk.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] if the file cannot be opened or its header
    /// is not a valid binary trace header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, FormatError> {
        Self::open_with_chunk_records(path, DEFAULT_CHUNK_RECORDS)
    }

    /// Opens a binary trace file holding at most `chunk_records` records in
    /// memory at a time (clamped to at least one).
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] if the file cannot be opened or its header
    /// is not a valid binary trace header.
    pub fn open_with_chunk_records(
        path: impl AsRef<Path>,
        chunk_records: usize,
    ) -> Result<Self, FormatError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let header = read_binary_header(&mut file)?;
        Ok(BinaryFileSource {
            file,
            path,
            name: header.name,
            data_offset: header.data_offset,
            declared_records: header.declared_records,
            file_len,
            position: 0,
            chunk: vec![0u8; chunk_records.max(1) * RECORD_BYTES],
            poison: None,
        })
    }

    /// The path this source reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records the chunk buffer holds.
    pub fn chunk_records(&self) -> usize {
        self.chunk.len() / RECORD_BYTES
    }

    /// Whole records available in the file (bounded by the declared count
    /// for counted traces, by the byte size for streaming traces).
    fn records_in_file(&self) -> u64 {
        let by_size = self.file_len.saturating_sub(self.data_offset) / RECORD_BYTES as u64;
        match self.declared_records {
            Some(declared) => declared.min(by_size),
            None => by_size,
        }
    }
}

impl BranchSource for BinaryFileSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, buf: &mut [BranchRecord]) -> Result<usize, FormatError> {
        if let Some(poison) = self.poison {
            return Err(poison.to_error());
        }
        if buf.is_empty() {
            return Ok(0);
        }
        let mut want = buf.len().min(self.chunk_records());
        if let Some(declared) = self.declared_records {
            want = want.min(declared.saturating_sub(self.position) as usize);
        }
        if want == 0 {
            return Ok(0);
        }
        let batch_offset = self.data_offset + self.position * RECORD_BYTES as u64;
        let target = want * RECORD_BYTES;
        let mut filled = 0usize;
        while filled < target {
            let n = self.file.read(&mut self.chunk[filled..target])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        let full = filled / RECORD_BYTES;
        if !filled.is_multiple_of(RECORD_BYTES) {
            let poison = Poison::Truncated {
                offset: batch_offset + (full * RECORD_BYTES) as u64,
            };
            self.poison = Some(poison);
            return Err(poison.to_error());
        }
        if full == 0 {
            // Clean EOF at a record boundary — but a counted trace promised
            // more records than the file holds.
            if self.declared_records.is_some() {
                let poison = Poison::Truncated {
                    offset: batch_offset,
                };
                self.poison = Some(poison);
                return Err(poison.to_error());
            }
            return Ok(0);
        }
        for (i, slot) in buf.iter_mut().enumerate().take(full) {
            let bytes = &self.chunk[i * RECORD_BYTES..(i + 1) * RECORD_BYTES];
            let offset = batch_offset + (i * RECORD_BYTES) as u64;
            match decode_record(bytes, offset) {
                Ok(record) => *slot = record,
                Err(error) => {
                    let poison = Poison::InvalidKind {
                        byte: bytes[16] & 0x7F,
                        offset,
                    };
                    self.poison = Some(poison);
                    return Err(error);
                }
            }
        }
        self.position += full as u64;
        Ok(full)
    }

    fn reset(&mut self) -> Result<(), FormatError> {
        self.file.seek(SeekFrom::Start(self.data_offset))?;
        self.position = 0;
        self.poison = None;
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records_in_file())
    }

    fn skip_records(&mut self, n: u64) -> Result<u64, FormatError> {
        if let Some(poison) = self.poison {
            return Err(poison.to_error());
        }
        let available = self.records_in_file().saturating_sub(self.position);
        let skip = n.min(available);
        if skip > 0 {
            self.position += skip;
            self.file.seek(SeekFrom::Start(
                self.data_offset + self.position * RECORD_BYTES as u64,
            ))?;
        }
        Ok(skip)
    }
}

/// On-the-fly synthetic [`BranchSource`]: the record stream of a
/// `(profile, seed, length)` triple without the materialized `Trace`.
///
/// Built on [`StreamCursor`], the records are bit-identical to
/// [`TraceSpec::generate`] with the same parameters, at any batch size, so
/// streamed suite runs reproduce materialized runs exactly.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    name: String,
    profile: WorkloadProfile,
    conditional_branches: usize,
    program: SyntheticProgram,
    cursor: StreamCursor,
}

impl SyntheticSource {
    /// A source generating `conditional_branches` conditional records (plus
    /// the call/return records the profile asks for).
    ///
    /// # Panics
    ///
    /// Panics if the profile does not pass
    /// [`WorkloadProfile::validate`].
    pub fn new(
        name: impl Into<String>,
        profile: WorkloadProfile,
        seed: u64,
        conditional_branches: usize,
    ) -> Self {
        let program = SyntheticProgram::from_profile(&profile, seed);
        SyntheticSource {
            name: name.into(),
            profile,
            conditional_branches,
            program,
            cursor: StreamCursor::new(conditional_branches),
        }
    }

    /// A source streaming the workload a suite trace specification names.
    pub fn from_spec(spec: &TraceSpec, conditional_branches: usize) -> Self {
        SyntheticSource::new(
            spec.name().to_string(),
            spec.profile().clone(),
            spec.seed(),
            conditional_branches,
        )
    }
}

impl BranchSource for SyntheticSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, buf: &mut [BranchRecord]) -> Result<usize, FormatError> {
        Ok(self.cursor.next_batch(&mut self.program, buf))
    }

    fn reset(&mut self) -> Result<(), FormatError> {
        // In-place, allocation-free rewind: suite scratch buffers rerun the
        // same source many times without touching the heap.
        self.program.rewind();
        self.cursor = StreamCursor::new(self.conditional_branches);
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        // Without call/return records the stream length is exactly the
        // conditional target; with them it is only known after generation.
        (!self.profile.emit_calls).then_some(self.conditional_branches as u64)
    }
}

/// Bounds an inner source to at most `records` records — the windowing
/// primitive behind history-warmed segment sharding (`tage_sim::segment`).
#[derive(Debug)]
pub struct Take<S> {
    inner: S,
    limit: u64,
    remaining: u64,
}

impl<S: BranchSource> Take<S> {
    /// Wraps `inner`, passing through at most `records` records from its
    /// *current* position.
    pub fn new(inner: S, records: u64) -> Self {
        Take {
            inner,
            limit: records,
            remaining: records,
        }
    }

    /// Unwraps the inner source at its current position.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: BranchSource> BranchSource for Take<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn next_batch(&mut self, buf: &mut [BranchRecord]) -> Result<usize, FormatError> {
        let cap = (buf.len() as u64).min(self.remaining) as usize;
        if cap == 0 {
            return Ok(0);
        }
        let n = self.inner.next_batch(&mut buf[..cap])?;
        self.remaining -= n as u64;
        Ok(n)
    }

    /// Rewinds the *inner source to its own start* and restores the full
    /// record budget; for a `Take` opened mid-stream this does not return to
    /// the wrapping position.
    fn reset(&mut self) -> Result<(), FormatError> {
        self.inner.reset()?;
        self.remaining = self.limit;
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint().map(|n| n.min(self.remaining))
    }

    fn skip_records(&mut self, n: u64) -> Result<u64, FormatError> {
        let skipped = self.inner.skip_records(n.min(self.remaining))?;
        self.remaining -= skipped;
        Ok(skipped)
    }
}

/// A recipe for opening a fresh [`BranchSource`] stream.
///
/// Suite and campaign runners deal in *specifications* rather than open
/// sources so that every worker (and every segment of a sharded run) can
/// open its own independent stream.
#[derive(Debug, Clone)]
pub enum SourceSpec {
    /// Generate a synthetic workload on the fly.
    Synthetic(TraceSpec),
    /// Stream a binary trace file from disk.
    BinaryFile(PathBuf),
    /// Decode a non-native trace file (compressed native, CBP-style text
    /// or binary — see [`crate::decoder`]) into memory at open time.
    DecodedFile(PathBuf),
}

impl SourceSpec {
    /// The stable label naming this source in reports (the trace name, or
    /// the file stem for file-backed sources).
    pub fn label(&self) -> String {
        match self {
            SourceSpec::Synthetic(spec) => spec.name().to_string(),
            SourceSpec::BinaryFile(path) => path
                .file_stem()
                .map(|stem| stem.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string()),
            SourceSpec::DecodedFile(path) => match decoder::detect(path) {
                Some((_, suffix)) => decoder::default_trace_name(path, suffix),
                None => path.display().to_string(),
            },
        }
    }

    /// A stable digest identifying the exact record stream this spec opens
    /// with `conditional_branches` — the source half of a warm-state cache
    /// key (see `tage_sim`'s warm cache).
    ///
    /// Synthetic sources hash their full generation recipe (name, seed,
    /// profile, record budget), so two specs digest equal exactly when they
    /// stream identical records. File-backed sources hash the path plus the
    /// file's current byte length; rewriting a trace file in place with the
    /// same length defeats this, so regenerated traces should go to fresh
    /// paths (or the cache directory should be cleared).
    pub fn digest(&self, conditional_branches: usize) -> u64 {
        match self {
            SourceSpec::Synthetic(spec) => crate::snapshot::fnv1a64(
                format!(
                    "synthetic|{}|seed={}|{:?}|branches={conditional_branches}",
                    spec.name(),
                    spec.seed(),
                    spec.profile()
                )
                .as_bytes(),
            ),
            SourceSpec::BinaryFile(path) => {
                let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                crate::snapshot::fnv1a64(format!("file|{}|len={len}", path.display()).as_bytes())
            }
            SourceSpec::DecodedFile(path) => {
                let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                crate::snapshot::fnv1a64(format!("decoded|{}|len={len}", path.display()).as_bytes())
            }
        }
    }

    /// Opens a fresh stream.
    ///
    /// `conditional_branches` sizes synthetic sources; file-backed sources
    /// yield whatever the file holds and ignore it.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] when a file-backed source cannot be opened.
    pub fn open(&self, conditional_branches: usize) -> Result<AnySource, FormatError> {
        match self {
            SourceSpec::Synthetic(spec) => Ok(AnySource::Synthetic(Box::new(
                SyntheticSource::from_spec(spec, conditional_branches),
            ))),
            SourceSpec::BinaryFile(path) => Ok(AnySource::File(BinaryFileSource::open(path)?)),
            SourceSpec::DecodedFile(path) => {
                Ok(AnySource::Decoded(Box::new(decoder::decode_file(path)?)))
            }
        }
    }
}

/// An opened [`SourceSpec`] stream (closed enum so suite runners stay free
/// of trait objects). The synthetic variant is boxed: a generator carries
/// its whole program state, which would otherwise bloat every file-backed
/// source by hundreds of bytes.
#[derive(Debug)]
pub enum AnySource {
    /// An on-the-fly synthetic stream.
    Synthetic(Box<SyntheticSource>),
    /// A chunked binary file stream.
    File(BinaryFileSource),
    /// A fully decoded (compressed or CBP-style) trace held in memory.
    Decoded(Box<DecodedSource>),
}

impl BranchSource for AnySource {
    fn name(&self) -> &str {
        match self {
            AnySource::Synthetic(s) => s.name(),
            AnySource::File(s) => s.name(),
            AnySource::Decoded(s) => s.name(),
        }
    }

    fn next_batch(&mut self, buf: &mut [BranchRecord]) -> Result<usize, FormatError> {
        match self {
            AnySource::Synthetic(s) => s.next_batch(buf),
            AnySource::File(s) => s.next_batch(buf),
            AnySource::Decoded(s) => s.next_batch(buf),
        }
    }

    fn reset(&mut self) -> Result<(), FormatError> {
        match self {
            AnySource::Synthetic(s) => s.reset(),
            AnySource::File(s) => s.reset(),
            AnySource::Decoded(s) => s.reset(),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        match self {
            AnySource::Synthetic(s) => s.len_hint(),
            AnySource::File(s) => s.len_hint(),
            AnySource::Decoded(s) => s.len_hint(),
        }
    }

    fn skip_records(&mut self, n: u64) -> Result<u64, FormatError> {
        match self {
            AnySource::Synthetic(s) => s.skip_records(n),
            AnySource::File(s) => s.skip_records(n),
            AnySource::Decoded(s) => s.skip_records(n),
        }
    }
}

/// A deterministic phase-sampling plan attached to a [`SourceSuite`]:
/// slice each stream into `interval`-record slices, cluster the slices
/// into at most `k` phases (seeded k-means over branch signatures, see
/// `tage_sim::phase`), simulate one representative slice per phase and
/// reconstruct whole-trace metrics as weighted sums.
///
/// The plan is part of cell identity everywhere it travels: the canonical
/// suite token [`SamplingSpec::suite_token`] embeds it, sampled suites are
/// renamed to that token, and the campaign cell store keys on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SamplingSpec {
    /// Records per slice (phase-analysis granularity).
    pub interval: u64,
    /// Maximum number of representative slices to simulate.
    pub k: usize,
    /// Seed of the deterministic k-means clustering.
    pub seed: u64,
}

impl SamplingSpec {
    /// Default slice size when a `sample:` token omits it.
    pub const DEFAULT_INTERVAL: u64 = 2_500;
    /// Default cluster count when a `sample:` token omits it.
    pub const DEFAULT_K: usize = 8;
    /// Default clustering seed when a `sample:` token omits it.
    pub const DEFAULT_SEED: u64 = 1;

    /// The spec with all defaults.
    pub fn default_plan() -> Self {
        SamplingSpec {
            interval: Self::DEFAULT_INTERVAL,
            k: Self::DEFAULT_K,
            seed: Self::DEFAULT_SEED,
        }
    }

    /// The canonical suite token for sampling `suite_name` under this
    /// plan: `sample:<suite>:<interval>:<k>:<seed>`. Parsing the token
    /// back yields the same name and plan.
    pub fn suite_token(&self, suite_name: &str) -> String {
        format!(
            "sample:{suite_name}:{}:{}:{}",
            self.interval, self.k, self.seed
        )
    }

    /// Parses a `sample:<suite>[:<interval>[:<k>[:<seed>]]]` token into
    /// the inner suite name and the (default-filled) plan. Returns `None`
    /// for tokens without the `sample:` prefix or with malformed numeric
    /// fields; `interval` and `k` must be nonzero.
    pub fn parse_token(token: &str) -> Option<(&str, SamplingSpec)> {
        let rest = token.strip_prefix("sample:")?;
        // The suite name is the first field; registry names contain no
        // colons, so everything after the next ':' is plan numbers.
        let (name, numbers) = match rest.split_once(':') {
            Some((name, numbers)) => (name, Some(numbers)),
            None => (rest, None),
        };
        if name.is_empty() {
            return None;
        }
        let mut spec = SamplingSpec::default_plan();
        if let Some(numbers) = numbers {
            let mut fields = numbers.split(':');
            if let Some(interval) = fields.next() {
                spec.interval = interval.parse().ok().filter(|&i| i > 0)?;
            }
            if let Some(k) = fields.next() {
                spec.k = k.parse().ok().filter(|&k| k > 0)?;
            }
            if let Some(seed) = fields.next() {
                spec.seed = seed.parse().ok()?;
            }
            if fields.next().is_some() {
                return None;
            }
        }
        Some((name, spec))
    }

    /// The identity fragment folded into campaign-cell cache keys.
    pub fn identity(&self) -> String {
        format!("interval:{},k:{},seed:{}", self.interval, self.k, self.seed)
    }
}

/// A named collection of [`SourceSpec`]s — the streaming counterpart of
/// [`Suite`], consumed by `tage_sim::suite::run_suite_sources` and the
/// campaign runner.
#[derive(Debug, Clone)]
pub struct SourceSuite {
    name: String,
    sources: Vec<SourceSpec>,
    sampling: Option<SamplingSpec>,
}

impl SourceSuite {
    /// Creates a suite from parts.
    pub fn new(name: impl Into<String>, sources: Vec<SourceSpec>) -> Self {
        SourceSuite {
            name: name.into(),
            sources,
            sampling: None,
        }
    }

    /// A streaming view of a synthetic suite: every trace specification
    /// becomes an on-the-fly [`SourceSpec::Synthetic`] source.
    pub fn from_suite(suite: &Suite) -> Self {
        SourceSuite {
            name: suite.name().to_string(),
            sources: suite
                .traces()
                .iter()
                .cloned()
                .map(SourceSpec::Synthetic)
                .collect(),
            sampling: None,
        }
    }

    /// A file-backed suite over explicit binary trace paths.
    pub fn from_files(name: impl Into<String>, paths: Vec<PathBuf>) -> Self {
        SourceSuite {
            name: name.into(),
            sources: paths.into_iter().map(SourceSpec::BinaryFile).collect(),
            sampling: None,
        }
    }

    /// A file-backed suite over every trace file in `dir`, in sorted
    /// (deterministic) file-name order, named after the directory.
    ///
    /// Native `*.trace` files stream chunked through
    /// [`SourceSpec::BinaryFile`]; every suffix a [`crate::decoder`]
    /// adapter claims (`.trace.gz`, `.tracez`, `.cbp`, `.cbpb`) becomes a
    /// [`SourceSpec::DecodedFile`], so mixed-format directories work.
    /// Files with unknown extensions are skipped with a warning on stderr
    /// instead of failing the whole suite; subdirectories are ignored
    /// silently.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError::Io`] when the directory cannot be read, and
    /// an [`std::io::ErrorKind::NotFound`]-flavoured error when it holds no
    /// trace files in any recognized format.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self, FormatError> {
        let dir = dir.as_ref();
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|entry| entry.path())
            .collect();
        entries.sort();
        let mut sources = Vec::new();
        for path in entries {
            if path.is_dir() {
                continue;
            }
            if path.extension().is_some_and(|ext| ext == "trace") {
                sources.push(SourceSpec::BinaryFile(path));
            } else if decoder::detect(&path).is_some() {
                sources.push(SourceSpec::DecodedFile(path));
            } else {
                eprintln!(
                    "warning: skipping {} (no trace format claims this extension)",
                    path.display()
                );
            }
        }
        if sources.is_empty() {
            return Err(FormatError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no trace files in a recognized format in {}", dir.display()),
            )));
        }
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| dir.display().to_string());
        Ok(SourceSuite {
            name,
            sources,
            sampling: None,
        })
    }

    /// Attaches a phase-sampling plan, renaming the suite to the canonical
    /// `sample:<name>:<interval>:<k>:<seed>` token so sampled and full
    /// cells can never collide in reports, caches or campaign ids. Calling
    /// it on an already sampled suite replaces the plan (the name keeps a
    /// single `sample:` prefix).
    pub fn with_sampling(mut self, spec: SamplingSpec) -> Self {
        let base = match SamplingSpec::parse_token(&self.name) {
            Some((inner, _)) => inner.to_string(),
            None => self.name,
        };
        self.name = spec.suite_token(&base);
        self.sampling = Some(spec);
        self
    }

    /// The phase-sampling plan, when one is attached.
    pub fn sampling(&self) -> Option<SamplingSpec> {
        self.sampling
    }

    /// The suite name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source specifications, in suite order.
    pub fn sources(&self) -> &[SourceSpec] {
        &self.sources
    }

    /// Looks a specification up by label.
    pub fn source(&self, label: &str) -> Option<&SourceSpec> {
        self.sources.iter().find(|s| s.label() == label)
    }

    /// A stable digest of the whole suite's content identity: the suite
    /// name folded with every member's [`SourceSpec::digest`], in suite
    /// order. Two suites digest equal exactly when they would stream the
    /// same named record sets — the suite half of a campaign-cell cache
    /// key (see `tage_bench`'s cell store).
    pub fn digest(&self, conditional_branches: usize) -> u64 {
        let mut identity = format!("suite|{}", self.name);
        for source in &self.sources {
            identity.push_str(&format!(
                "|{}={:016x}",
                source.label(),
                source.digest(conditional_branches)
            ));
        }
        crate::snapshot::fnv1a64(identity.as_bytes())
    }
}

impl From<&Suite> for SourceSuite {
    fn from(suite: &Suite) -> Self {
        SourceSuite::from_suite(suite)
    }
}

impl From<Suite> for SourceSuite {
    fn from(suite: Suite) -> Self {
        SourceSuite::from_suite(&suite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;
    use crate::writer::{StreamingTraceWriter, TraceWriter};

    fn drain(source: &mut impl BranchSource, batch: usize) -> Vec<BranchRecord> {
        let mut buf = vec![BranchRecord::default(); batch];
        let mut all = Vec::new();
        loop {
            let n = source.next_batch(&mut buf).expect("source reads");
            if n == 0 {
                return all;
            }
            all.extend_from_slice(&buf[..n]);
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "tage-source-test-{}-{tag}.trace",
            std::process::id()
        ))
    }

    #[test]
    fn slice_source_yields_everything_and_resets() {
        let trace = suites::cbp1_like().trace("INT-1").unwrap().generate(1_000);
        let mut source = SliceSource::from_trace(&trace);
        assert_eq!(source.name(), "INT-1");
        assert_eq!(source.len_hint(), Some(trace.len() as u64));
        let first = drain(&mut source, 7);
        assert_eq!(first, trace.records());
        assert_eq!(
            source.next_batch(&mut [BranchRecord::default()]).unwrap(),
            0
        );
        source.reset().unwrap();
        assert_eq!(drain(&mut source, 1024), trace.records());
    }

    #[test]
    fn slice_source_skips_in_constant_time_semantics() {
        let trace = suites::cbp1_like().trace("FP-1").unwrap().generate(100);
        let mut source = SliceSource::from_trace(&trace);
        assert_eq!(source.skip_records(30).unwrap(), 30);
        let rest = drain(&mut source, 16);
        assert_eq!(rest, &trace.records()[30..]);
        assert_eq!(source.skip_records(5).unwrap(), 0, "exhausted");
        source.reset().unwrap();
        assert_eq!(source.skip_records(u64::MAX).unwrap(), trace.len() as u64);
    }

    #[test]
    fn file_source_round_trips_counted_traces_at_any_chunk_size() {
        let trace = suites::cbp1_like().trace("MM-5").unwrap().generate(2_000);
        let path = temp_path("counted");
        std::fs::write(&path, TraceWriter::to_binary_bytes(&trace)).unwrap();
        for chunk in [1, 7, 256, 100_000] {
            let mut source = BinaryFileSource::open_with_chunk_records(&path, chunk).unwrap();
            assert_eq!(source.name(), "MM-5");
            assert_eq!(source.len_hint(), Some(trace.len() as u64));
            assert_eq!(drain(&mut source, 33), trace.records(), "chunk {chunk}");
            source.reset().unwrap();
            assert_eq!(drain(&mut source, 4096).len(), trace.len());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_source_round_trips_streaming_traces() {
        let trace = suites::cbp1_like().trace("SERV-2").unwrap().generate(500);
        let path = temp_path("streaming");
        let mut writer =
            StreamingTraceWriter::new(std::fs::File::create(&path).unwrap(), "SERV-2").unwrap();
        for record in trace.iter() {
            writer.push(record).unwrap();
        }
        writer.finish().unwrap();
        let mut source = BinaryFileSource::open(&path).unwrap();
        assert_eq!(source.len_hint(), Some(trace.len() as u64));
        assert_eq!(drain(&mut source, 100), trace.records());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_source_skip_seeks_and_resumes() {
        let trace = suites::cbp1_like().trace("INT-2").unwrap().generate(300);
        let path = temp_path("skip");
        std::fs::write(&path, TraceWriter::to_binary_bytes(&trace)).unwrap();
        let mut source = BinaryFileSource::open_with_chunk_records(&path, 16).unwrap();
        assert_eq!(source.skip_records(100).unwrap(), 100);
        assert_eq!(drain(&mut source, 64), &trace.records()[100..]);
        source.reset().unwrap();
        assert_eq!(
            source.skip_records(u64::MAX).unwrap(),
            trace.len() as u64,
            "skip clamps at the end of the file"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_source_skip_is_a_byte_offset_seek_not_a_read_through() {
        // Corrupt a record *inside* the skipped range: a seek never decodes
        // those bytes, so the skip must succeed and the stream resume
        // cleanly past the damage — a read-through implementation would
        // error. This pins the phase-sampling gap jump as an O(1) seek.
        let trace = suites::cbp1_like().trace("MM-5").unwrap().generate(200);
        let path = temp_path("skip-seek");
        let mut bytes = TraceWriter::to_binary_bytes(&trace);
        let data_offset = bytes.len() - trace.len() * RECORD_BYTES;
        // Poison record 50's kind byte (offset 16 within the record).
        let poison_at = data_offset + 50 * RECORD_BYTES + 16;
        bytes[poison_at] = 0x7F;
        std::fs::write(&path, &bytes).unwrap();

        let mut source = BinaryFileSource::open_with_chunk_records(&path, 16).unwrap();
        assert_eq!(source.skip_records(120).unwrap(), 120);
        assert_eq!(
            drain(&mut source, 32),
            &trace.records()[120..],
            "the stream resumes at the exact byte offset of record 120"
        );

        // The corruption is real: reading from the start does hit it.
        source.reset().unwrap();
        let mut buf = [BranchRecord::default(); 16];
        let err = loop {
            match source.next_batch(&mut buf) {
                Ok(0) => panic!("corrupt record must error on a read-through"),
                Ok(_) => continue,
                Err(err) => break err,
            }
        };
        assert!(
            matches!(
                err,
                FormatError::InvalidKind { offset, .. }
                    if offset == data_offset as u64 + 50 * RECORD_BYTES as u64
            ),
            "unexpected error: {err:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_source_reports_truncation_offset() {
        let trace = suites::cbp1_like().trace("FP-2").unwrap().generate(50);
        let path = temp_path("truncated");
        let mut bytes = TraceWriter::to_binary_bytes(&trace);
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();
        let mut source = BinaryFileSource::open_with_chunk_records(&path, 8).unwrap();
        let mut buf = [BranchRecord::default(); 8];
        let err = loop {
            match source.next_batch(&mut buf) {
                Ok(0) => panic!("truncated file must error, not end cleanly"),
                Ok(_) => continue,
                Err(err) => break err,
            }
        };
        // The partial record starts at the last whole-record boundary.
        let full_records = (bytes.len() as u64 - source.data_offset) / RECORD_BYTES as u64;
        let expected = source.data_offset + full_records * RECORD_BYTES as u64;
        assert!(
            matches!(err, FormatError::TruncatedRecord { offset } if offset == expected),
            "unexpected error {err:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corruption_errors_are_sticky_until_reset() {
        // A truncated *streaming* trace must keep erroring on further pulls
        // — without the poison state the pull after the error would see the
        // (uncounted) EOF and report a clean end of stream.
        let trace = suites::cbp1_like().trace("INT-1").unwrap().generate(40);
        let path = temp_path("sticky");
        let mut writer =
            StreamingTraceWriter::new(std::fs::File::create(&path).unwrap(), "s").unwrap();
        for record in trace.iter() {
            writer.push(record).unwrap();
        }
        writer.finish().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        std::fs::File::options()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 4)
            .unwrap();

        let mut source = BinaryFileSource::open_with_chunk_records(&path, 8).unwrap();
        let mut buf = [BranchRecord::default(); 8];
        let first = loop {
            match source.next_batch(&mut buf) {
                Ok(0) => panic!("truncated streaming file must error"),
                Ok(_) => continue,
                Err(err) => break err,
            }
        };
        let offset = match first {
            FormatError::TruncatedRecord { offset } => offset,
            other => panic!("unexpected error {other:?}"),
        };
        for _ in 0..3 {
            let again = source.next_batch(&mut buf).unwrap_err();
            assert!(
                matches!(again, FormatError::TruncatedRecord { offset: o } if o == offset),
                "repeat pulls must re-report the same corruption, got {again:?}"
            );
        }
        assert!(source.skip_records(1).is_err(), "skip is poisoned too");
        // reset() clears the poison and the stream is readable again up to
        // the damage.
        source.reset().unwrap();
        assert_eq!(source.next_batch(&mut buf).unwrap(), 8);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_source_reports_corrupt_kind_offset() {
        let trace = suites::cbp1_like().trace("FP-1").unwrap().generate(20);
        let path = temp_path("corrupt");
        let mut bytes = TraceWriter::to_binary_bytes(&trace);
        let data_offset = bytes.len() - 20 * RECORD_BYTES;
        let corrupt_record = 13;
        bytes[data_offset + corrupt_record * RECORD_BYTES + 16] = 0x33;
        std::fs::write(&path, &bytes).unwrap();
        let mut source = BinaryFileSource::open_with_chunk_records(&path, 4).unwrap();
        let mut buf = [BranchRecord::default(); 4];
        let err = loop {
            match source.next_batch(&mut buf) {
                Ok(0) => panic!("corrupt file must error"),
                Ok(_) => continue,
                Err(err) => break err,
            }
        };
        let expected = (data_offset + corrupt_record * RECORD_BYTES) as u64;
        assert!(
            matches!(err, FormatError::InvalidKind { byte: 0x33, offset } if offset == expected),
            "unexpected error {err:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn synthetic_source_is_bit_identical_to_materialized_generation() {
        let suite = suites::cbp1_like();
        for name in ["INT-1", "SERV-2"] {
            let spec = suite.trace(name).unwrap();
            let trace = spec.generate(3_000);
            let mut source = SyntheticSource::from_spec(spec, 3_000);
            assert_eq!(source.name(), name);
            assert_eq!(drain(&mut source, 61), trace.records(), "{name}");
            source.reset().unwrap();
            assert_eq!(drain(&mut source, 4096), trace.records(), "{name} reset");
        }
    }

    #[test]
    fn take_bounds_a_source_to_a_record_budget() {
        let trace = suites::cbp1_like().trace("INT-1").unwrap().generate(200);
        let mut inner = SliceSource::from_trace(&trace);
        inner.skip_records(50).unwrap();
        let mut window = Take::new(&mut inner, 30);
        assert_eq!(window.len_hint(), Some(30));
        let got = drain(&mut window, 8);
        assert_eq!(got, &trace.records()[50..80]);
        // The inner source resumes right after the window.
        let rest = drain(&mut inner, 64);
        assert_eq!(rest, &trace.records()[80..]);
    }

    #[test]
    fn source_specs_open_and_label() {
        let suite = suites::cbp1_mini();
        let spec = SourceSpec::Synthetic(suite.traces()[0].clone());
        assert_eq!(spec.label(), "FP-1");
        let mut opened = spec.open(100).unwrap();
        assert_eq!(opened.name(), "FP-1");
        assert_eq!(drain(&mut opened, 16).len() as u64, {
            let trace = suite.traces()[0].generate(100);
            trace.len() as u64
        });

        let trace = suite.traces()[1].generate(50);
        let path = temp_path("spec");
        std::fs::write(&path, TraceWriter::to_binary_bytes(&trace)).unwrap();
        let spec = SourceSpec::BinaryFile(path.clone());
        assert!(spec.label().starts_with("tage-source-test"));
        let mut opened = spec.open(0).unwrap();
        assert_eq!(opened.name(), "INT-2");
        assert_eq!(drain(&mut opened, 16), trace.records());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn source_suite_mirrors_synthetic_suites_and_scans_directories() {
        let suite = suites::cbp1_mini();
        let sources = SourceSuite::from_suite(&suite);
        assert_eq!(sources.name(), suite.name());
        assert_eq!(sources.sources().len(), suite.traces().len());
        assert!(sources.source("FP-1").is_some());
        assert!(sources.source("nope").is_none());
        let converted: SourceSuite = (&suite).into();
        assert_eq!(converted.sources().len(), sources.sources().len());

        let dir = std::env::temp_dir().join(format!("tage-source-dir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["b", "a"] {
            let trace = suite.traces()[0].generate(10);
            std::fs::write(
                dir.join(format!("{name}.trace")),
                TraceWriter::to_binary_bytes(&trace),
            )
            .unwrap();
        }
        // A compressed native trace and a CBP text trace join the suite; an
        // unknown extension is skipped with a warning instead of erroring.
        let trace = suite.traces()[1].generate(10);
        std::fs::write(
            dir.join("c.trace.gz"),
            crate::inflate::gzip_compress(&TraceWriter::to_binary_bytes(&trace)),
        )
        .unwrap();
        std::fs::write(dir.join("d.cbp"), b"1000 1\n2000 0\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), b"not a trace").unwrap();
        let scanned = SourceSuite::from_dir(&dir).unwrap();
        let labels: Vec<String> = scanned.sources().iter().map(SourceSpec::label).collect();
        assert_eq!(
            labels,
            vec![
                "a".to_string(),
                "b".to_string(),
                "c".to_string(),
                "d".to_string()
            ]
        );
        assert!(matches!(scanned.sources()[2], SourceSpec::DecodedFile(_)));
        let mut opened = scanned.sources()[2].open(0).unwrap();
        assert_eq!(opened.name(), trace.name());
        assert_eq!(drain(&mut opened, 16), trace.records());
        std::fs::remove_dir_all(&dir).unwrap();

        let empty = std::env::temp_dir().join(format!("tage-source-empty-{}", std::process::id()));
        std::fs::create_dir_all(&empty).unwrap();
        assert!(SourceSuite::from_dir(&empty).is_err());
        std::fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn sampling_tokens_parse_render_and_rename_suites() {
        let spec = SamplingSpec {
            interval: 2_500,
            k: 8,
            seed: 1,
        };
        assert_eq!(spec.suite_token("cbp1-mini"), "sample:cbp1-mini:2500:8:1");
        let (name, parsed) = SamplingSpec::parse_token("sample:cbp1-mini:2500:8:1").unwrap();
        assert_eq!(name, "cbp1-mini");
        assert_eq!(parsed, spec);

        // Shorter forms fill defaults left to right.
        let (name, parsed) = SamplingSpec::parse_token("sample:cbp1").unwrap();
        assert_eq!(name, "cbp1");
        assert_eq!(parsed, SamplingSpec::default_plan());
        let (_, parsed) = SamplingSpec::parse_token("sample:cbp1:1000").unwrap();
        assert_eq!(parsed.interval, 1_000);
        assert_eq!(parsed.k, SamplingSpec::DEFAULT_K);
        let (_, parsed) = SamplingSpec::parse_token("sample:cbp1:1000:4").unwrap();
        assert_eq!(parsed.k, 4);
        assert_eq!(parsed.seed, SamplingSpec::DEFAULT_SEED);

        for bad in [
            "cbp1",
            "sample:",
            "sample:cbp1:0",       // zero interval
            "sample:cbp1:10:0",    // zero k
            "sample:cbp1:x",       // non-numeric
            "sample:cbp1:1:2:3:4", // too many fields
        ] {
            assert!(SamplingSpec::parse_token(bad).is_none(), "{bad}");
        }

        // with_sampling renames to the canonical token, idempotently.
        let suite = SourceSuite::from_suite(&suites::cbp1_mini());
        assert!(suite.sampling().is_none());
        let base_name = suite.name().to_string();
        let sampled = suite.with_sampling(spec);
        assert_eq!(sampled.name(), format!("sample:{base_name}:2500:8:1"));
        assert_eq!(sampled.sampling(), Some(spec));
        let resampled = sampled.with_sampling(SamplingSpec {
            interval: 500,
            k: 2,
            seed: 7,
        });
        assert_eq!(resampled.name(), format!("sample:{base_name}:500:2:7"));
    }
}
