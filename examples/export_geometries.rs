//! Regenerates the committed preset geometry files in `geometries/`.
//!
//! The three JSON files mirror `TageConfig::{small,medium,large}` exactly —
//! `tests/geometry_parity.rs` pins the committed bytes to `to_json()` of the
//! corresponding preset, so a drive-by edit of either side fails CI. Run
//! this after an intentional preset change to refresh the files:
//!
//! Run with: `cargo run --release --example export_geometries`

use tage_confidence_suite::tage::{TageConfig, TageGeometry};

fn main() {
    let presets = [
        ("geometries/tage-16k.json", TageConfig::small()),
        ("geometries/tage-64k.json", TageConfig::medium()),
        ("geometries/tage-256k.json", TageConfig::large()),
    ];
    std::fs::create_dir_all("geometries").expect("create geometries/");
    for (path, config) in presets {
        let geometry = TageGeometry::from_config(&config);
        geometry.save(path).expect("write geometry file");
        println!(
            "wrote {path}: {} ({} bits, digest {:016x})",
            geometry.name(),
            geometry.storage_bits(),
            geometry.spec_digest()
        );
    }
}
