//! Micro-benchmark: TAGE prediction + update throughput for the three
//! predictor sizes, plus the baseline predictors for context.
//!
//! Run with: `cargo bench --bench prediction_throughput`

use tage::{TageConfig, TagePredictor};
use tage_bench::harness::bench;
use tage_predictors::{
    BimodalPredictor, BranchPredictor, GehlPredictor, GsharePredictor, PerceptronPredictor,
};
use tage_traces::{suites, Trace};

fn workload() -> Trace {
    suites::cbp1_like().trace("INT-1").unwrap().generate(20_000)
}

fn run_loop(p: &mut dyn BranchPredictor, trace: &Trace) -> u64 {
    let mut misses = 0u64;
    for record in trace.iter().filter(|r| r.kind.is_conditional()) {
        let pred = p.predict(record.pc);
        if pred.taken != record.taken {
            misses += 1;
        }
        p.update(record.pc, record.taken, &pred);
    }
    misses
}

fn main() {
    let trace = workload();
    let branches = trace.iter().filter(|r| r.kind.is_conditional()).count() as u64;

    for config in [
        TageConfig::small(),
        TageConfig::medium(),
        TageConfig::large(),
    ] {
        bench("tage_predict_update", &config.name(), branches, || {
            let mut predictor = TagePredictor::new(config.clone());
            let mut misses = 0u64;
            for record in trace.iter().filter(|r| r.kind.is_conditional()) {
                let pred = predictor.predict(record.pc);
                if pred.taken != record.taken {
                    misses += 1;
                }
                predictor.update(record.pc, record.taken, &pred);
            }
            misses
        });
    }

    bench("baseline_predict_update", "bimodal-8k", branches, || {
        run_loop(&mut BimodalPredictor::new(13), &trace)
    });
    bench("baseline_predict_update", "gshare-16k", branches, || {
        run_loop(&mut GsharePredictor::new(14, 14), &trace)
    });
    bench(
        "baseline_predict_update",
        "perceptron-512x32",
        branches,
        || run_loop(&mut PerceptronPredictor::new(512, 32), &trace),
    );
    bench("baseline_predict_update", "gehl-6x2k", branches, || {
        run_loop(&mut GehlPredictor::new(6, 11, 3, 120), &trace)
    });
}
