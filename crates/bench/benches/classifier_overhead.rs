//! Micro-benchmark: cost of the storage-free confidence classification on
//! top of a plain TAGE simulation loop.
//!
//! The paper's argument is that the estimation is free in hardware; this
//! bench shows it is also nearly free in simulation (a few percent on top of
//! predict + update).
//!
//! Run with: `cargo bench --bench classifier_overhead`

use tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_bench::harness::bench;
use tage_confidence::TageConfidenceClassifier;
use tage_traces::{suites, Trace};

fn workload() -> Trace {
    suites::cbp1_like().trace("MM-3").unwrap().generate(20_000)
}

fn config() -> TageConfig {
    TageConfig::medium().with_automaton(CounterAutomaton::paper_default())
}

fn main() {
    let trace = workload();
    let branches = trace.iter().filter(|r| r.kind.is_conditional()).count() as u64;

    bench(
        "classifier_overhead",
        "predict_update_only",
        branches,
        || {
            let mut predictor = TagePredictor::new(config());
            let mut misses = 0u64;
            for record in trace.iter().filter(|r| r.kind.is_conditional()) {
                let pred = predictor.predict(record.pc);
                if pred.taken != record.taken {
                    misses += 1;
                }
                predictor.update(record.pc, record.taken, &pred);
            }
            misses
        },
    );

    bench(
        "classifier_overhead",
        "predict_classify_update",
        branches,
        || {
            let mut predictor = TagePredictor::new(config());
            let mut classifier = TageConfidenceClassifier::new(&config());
            let mut high = 0u64;
            for record in trace.iter().filter(|r| r.kind.is_conditional()) {
                let pred = predictor.predict(record.pc);
                let class = classifier.classify_and_observe(&pred, record.taken);
                if class.level() == tage_confidence::ConfidenceLevel::High {
                    high += 1;
                }
                predictor.update(record.pc, record.taken, &pred);
            }
            high
        },
    );
}
