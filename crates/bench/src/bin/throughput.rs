//! Throughput smoke test: end-to-end simulated branches per second through
//! the generic engine, plus heap-allocation accounting for the hot path —
//! the perf trajectory tracked across PRs.
//!
//! The binary installs a counting global allocator, so every measurement
//! reports `allocs_per_branch` alongside throughput. The TAGE lookup/update
//! path is required to be allocation-free: `predict_hot_path` and
//! `engine_single_trace` assert zero heap allocations per branch and the
//! process exits non-zero if the hot path regresses.
//!
//! Prints a human-readable summary and appends a labelled entry to the
//! `BENCH_throughput.json` trajectory (see `docs/BENCHMARKS.md` for the
//! schema; re-running with the same label replaces the last entry).
//!
//! Run with:
//! `cargo run --release --bin throughput -- [branches] [--out PATH]
//! [--baseline PATH] [--label STR] [--source KIND]
//! [--check-regression[=TOLERANCE]]`
//!
//! `--source {slice,file,synthetic,all}` (default `all`) selects which
//! streamed `BranchSource` measurements run alongside the materialized
//! ones: `engine_streamed_slice` (zero-copy in-memory stream, gated at
//! exactly zero steady-state heap allocations), `engine_streamed_file`
//! (chunked binary-file stream round-tripped through a temp file — allowed
//! its fixed chunk buffer and open-time metadata only, the gate fails if
//! allocations scale with branches) and `engine_streamed_synthetic`
//! (generate-on-the-fly, no materialized trace).
//!
//! `--baseline` seeds the written trajectory from a different file than
//! `--out`: CI and `scripts/verify.sh` point `--baseline` at the committed
//! milestone file and `--out` at an untracked path, so routine runs never
//! dirty the working tree (this replaces the old copy-the-file-first dance).
//! `--check-regression` compares this run against the latest baseline
//! milestone and exits non-zero below `TOLERANCE × milestone` (default
//! 0.5). The compared metric is the same-host `engine_single_trace /
//! engine_reference_nested_vec` speedup ratio whenever both sides carry it
//! (host-speed-immune; raw branches/sec only as a fallback for old
//! milestones), so the gate catches hot-path collapses without going red on
//! slower CI hosts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use tage::{CounterAutomaton, ReferenceTagePredictor, TageConfig, TagePredictor};
use tage_bench::{cli, print_header, trajectory, DEFAULT_BRANCHES_PER_TRACE};
use tage_confidence::TageConfidenceClassifier;
use tage_sim::engine::{default_parallelism, ReportObserver, SimEngine};
use tage_sim::multilane::{MultilaneEngine, DEFAULT_LANES};
use tage_sim::runner::RunOptions;
use tage_sim::suite::SuiteScratch;
use tage_traces::source::{
    BinaryFileSource, BranchSource, SliceSource, SourceSuite, SyntheticSource,
};
use tage_traces::suites;
use tage_traces::writer::TraceWriter;

/// A [`System`]-backed allocator that counts every allocation, so the
/// measurements below can report heap allocations per simulated branch.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f`, returning its result, the wall-clock seconds it took and the
/// number of heap allocations it performed (process-wide).
fn timed_counting<R>(f: impl FnOnce() -> R) -> (R, f64, u64) {
    let allocations_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    let result = f();
    let seconds = start.elapsed().as_secs_f64();
    let allocations = ALLOCATIONS.load(Ordering::Relaxed) - allocations_before;
    (result, seconds, allocations)
}

struct Measurement {
    name: &'static str,
    branches: u64,
    seconds: f64,
    allocations: u64,
}

impl Measurement {
    fn branches_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.branches as f64 / self.seconds
        }
    }

    fn allocations_per_branch(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.allocations as f64 / self.branches as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"branches\": {}, \"seconds\": {:.6}, \"branches_per_sec\": {:.0}, \"allocs_per_branch\": {:.6}}}",
            self.name,
            self.branches,
            self.seconds,
            self.branches_per_second(),
            self.allocations_per_branch()
        )
    }
}

/// Which streamed-source measurements to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SourceSelection {
    All,
    Slice,
    File,
    Synthetic,
}

impl SourceSelection {
    fn parse(value: &str) -> Result<Self, String> {
        match value {
            "all" => Ok(SourceSelection::All),
            "slice" => Ok(SourceSelection::Slice),
            "file" => Ok(SourceSelection::File),
            "synthetic" => Ok(SourceSelection::Synthetic),
            other => Err(format!(
                "--source: unknown kind \"{other}\" (known: slice, file, synthetic, all)"
            )),
        }
    }

    fn includes(self, kind: SourceSelection) -> bool {
        self == SourceSelection::All || self == kind
    }
}

/// CLI options of the throughput bin.
struct Options {
    branches: usize,
    /// Path the trajectory is written to.
    out: String,
    /// Path existing trajectory entries are seeded from (defaults to `out`,
    /// preserving the original read-append-rewrite behaviour).
    baseline: Option<String>,
    label: String,
    /// Streamed-source measurements to run.
    source: SourceSelection,
    /// `Some(tolerance)` when `--check-regression` is requested.
    regression_tolerance: Option<f64>,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        branches: DEFAULT_BRANCHES_PER_TRACE,
        out: "BENCH_throughput.json".to_string(),
        baseline: None,
        label: "current".to_string(),
        source: SourceSelection::All,
        regression_tolerance: None,
    };
    let mut args = std::env::args().skip(1);
    let mut saw_positional = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => options.out = cli::require_value(&mut args, "--out")?,
            "--baseline" => options.baseline = Some(cli::require_value(&mut args, "--baseline")?),
            "--label" => options.label = cli::require_value(&mut args, "--label")?,
            "--source" => {
                options.source =
                    SourceSelection::parse(&cli::require_value(&mut args, "--source")?)?
            }
            "--check-regression" => options.regression_tolerance = Some(0.5),
            _ if arg.starts_with("--check-regression=") => {
                let value = &arg["--check-regression=".len()..];
                let tolerance: f64 = value
                    .parse()
                    .map_err(|_| format!("--check-regression: not a number: {value}"))?;
                if !(tolerance > 0.0 && tolerance.is_finite()) {
                    return Err(format!(
                        "--check-regression: tolerance must be positive and finite (got {value})"
                    ));
                }
                options.regression_tolerance = Some(tolerance);
            }
            _ if !saw_positional && !arg.starts_with("--") => {
                saw_positional = true;
                options.branches = cli::parse_count("branches", &arg)?;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(options)
}

fn main() {
    let options = match parse_options() {
        Ok(options) => options,
        Err(error) => {
            eprintln!("throughput: {error}");
            std::process::exit(1);
        }
    };
    let branches = options.branches;
    print_header(
        "Throughput smoke — simulated branches per second, heap allocations per branch",
        branches,
    );

    let config = TageConfig::medium().with_automaton(CounterAutomaton::paper_default());
    let mut measurements = Vec::new();

    // 1. The raw lookup hot path: `predict` on a trained predictor. This is
    //    the path the SoA tables + fixed scratch refactor made
    //    allocation-free; it must stay at exactly zero allocs per branch.
    let trace = suites::cbp1_like()
        .trace("INT-1")
        .expect("trace exists")
        .generate(branches);
    let mut predictor = TagePredictor::new(config.clone());
    for record in trace.iter().filter(|r| r.kind.is_conditional()) {
        let prediction = predictor.predict(record.pc);
        predictor.update(record.pc, record.taken, &prediction);
    }
    let lookups = branches as u64;
    let (sink, seconds, allocations) = timed_counting(|| {
        let mut agree = 0u64;
        for record in trace.iter().filter(|r| r.kind.is_conditional()) {
            let prediction = predictor.predict(record.pc);
            agree += u64::from(prediction.taken == record.taken);
        }
        agree
    });
    assert!(sink <= lookups);
    measurements.push(Measurement {
        name: "predict_hot_path",
        branches: lookups,
        seconds,
        allocations,
    });

    // 2. Single-trace engine throughput (predict + classify + train).
    let mut engine = SimEngine::new(
        TagePredictor::new(config.clone()),
        TageConfidenceClassifier::new(&config),
    );
    let mut report = ReportObserver::default();
    let (summary, seconds, allocations) = timed_counting(|| engine.run(&trace, &mut report));
    measurements.push(Measurement {
        name: "engine_single_trace",
        branches: summary.measured_branches,
        seconds,
        allocations,
    });

    // 3. The same engine loop with the nested-Vec reference predictor: a
    //    same-host, same-run baseline, so every trajectory entry carries the
    //    honest before/after ratio of the SoA + scratch refactor (entries
    //    recorded on different hosts are not directly comparable).
    let mut engine = SimEngine::new(
        ReferenceTagePredictor::new(config.clone()),
        TageConfidenceClassifier::new(&config),
    );
    let mut report = ReportObserver::default();
    let (summary, seconds, allocations) = timed_counting(|| engine.run(&trace, &mut report));
    measurements.push(Measurement {
        name: "engine_reference_nested_vec",
        branches: summary.measured_branches,
        seconds,
        allocations,
    });

    // 4. The lane-batched lockstep engine: DEFAULT_LANES copies of the same
    //    stream advanced one branch per cycle through per-component passes.
    //    The engine, sources and result slots are built (and warmed by one
    //    full run) outside the timed region, so the timed rerun measures the
    //    steady state and must be exactly allocation-free. Reported
    //    throughput is the *aggregate* over all lanes; the regression gate
    //    compares it against engine_single_trace as a same-host ratio.
    {
        let mut engine =
            MultilaneEngine::new(config.clone(), &RunOptions::default(), DEFAULT_LANES);
        let mut sources: Vec<SliceSource<'_>> = (0..DEFAULT_LANES)
            .map(|_| SliceSource::from_trace(&trace))
            .collect();
        let mut results: Vec<_> = (0..DEFAULT_LANES)
            .map(|_| MultilaneEngine::placeholder_result())
            .collect();
        engine
            .run_into(&mut sources, &mut results)
            .expect("slice sources are infallible");
        for source in &mut sources {
            source.reset().expect("slice sources rewind");
        }
        let (aggregate_branches, seconds, allocations) = timed_counting(|| {
            engine
                .run_into(&mut sources, &mut results)
                .expect("slice sources are infallible");
            results.iter().map(|r| r.conditional_branches).sum::<u64>()
        });
        measurements.push(Measurement {
            name: "engine_multilane",
            branches: aggregate_branches,
            seconds,
            allocations,
        });
    }

    // 5. Streamed ingestion through the BranchSource API. Engines are
    //    constructed outside the timed regions (their fixed batch buffer is
    //    a construction-time allocation), so the timed loops measure the
    //    steady-state streaming hot path.
    let spec = suites::cbp1_like()
        .trace("INT-1")
        .expect("trace exists")
        .clone();
    if options.source.includes(SourceSelection::Slice) {
        // 4a. Zero-copy stream over the in-memory trace: must be exactly
        //     allocation-free, like the materialized engine run.
        let mut engine = SimEngine::new(
            TagePredictor::new(config.clone()),
            TageConfidenceClassifier::new(&config),
        );
        let mut report = ReportObserver::default();
        let mut source = SliceSource::from_trace(&trace);
        let (summary, seconds, allocations) = timed_counting(|| {
            engine
                .run_source(&mut source, &mut report)
                .expect("slice sources are infallible")
        });
        measurements.push(Measurement {
            name: "engine_streamed_slice",
            branches: summary.measured_branches,
            seconds,
            allocations,
        });
    }
    if options.source.includes(SourceSelection::File) {
        // 4b. Chunked binary-file stream: the trace is round-tripped through
        //     a temp file and read back through BinaryFileSource. The open
        //     (file handle, name, fixed chunk buffer) happens inside the
        //     timed region; those few allocations are the allowed fixed
        //     cost, and the gate below fails if allocations scale with the
        //     branch count instead.
        let path = std::env::temp_dir().join(format!(
            "tage-throughput-{}-{branches}.trace",
            std::process::id()
        ));
        match std::fs::write(&path, TraceWriter::to_binary_bytes(&trace)) {
            Ok(()) => {
                let mut engine = SimEngine::new(
                    TagePredictor::new(config.clone()),
                    TageConfidenceClassifier::new(&config),
                );
                let mut report = ReportObserver::default();
                let (summary, seconds, allocations) = timed_counting(|| {
                    let mut source = BinaryFileSource::open(&path).expect("temp trace file opens");
                    engine
                        .run_source(&mut source, &mut report)
                        .expect("temp trace file reads")
                });
                measurements.push(Measurement {
                    name: "engine_streamed_file",
                    branches: summary.measured_branches,
                    seconds,
                    allocations,
                });
                let _ = std::fs::remove_file(&path);
            }
            Err(error) => {
                eprintln!("skipping engine_streamed_file: cannot write {path:?}: {error}");
            }
        }
    }
    if options.source.includes(SourceSelection::Synthetic) {
        // 4c. Generate-on-the-fly stream: trace generation fused into the
        //     simulation loop, no materialized Vec of records anywhere.
        let mut engine = SimEngine::new(
            TagePredictor::new(config.clone()),
            TageConfidenceClassifier::new(&config),
        );
        let mut report = ReportObserver::default();
        let mut source = SyntheticSource::from_spec(&spec, branches);
        let (summary, seconds, allocations) = timed_counting(|| {
            engine
                .run_source(&mut source, &mut report)
                .expect("synthetic sources are infallible")
        });
        measurements.push(Measurement {
            name: "engine_streamed_synthetic",
            branches: summary.measured_branches,
            seconds,
            allocations,
        });
    }

    // 6. Whole-suite throughput through the persistent SuiteScratch: all
    //    sources opened once, one lane-batched engine, result buffers
    //    refilled in place. The scratch is built and warmed by one full run
    //    outside the timed region, so the timed rerun is required to perform
    //    exactly zero heap allocations.
    let suite = suites::cbp1_like();
    let per_trace = (branches / 10).max(1_000);
    let mut scratch = SuiteScratch::new(
        &config,
        &SourceSuite::from_suite(&suite),
        per_trace,
        &RunOptions::default(),
        DEFAULT_LANES,
    )
    .expect("synthetic sources are infallible");
    scratch.run().expect("synthetic sources are infallible");
    let (suite_branches, seconds, allocations) = timed_counting(|| {
        let result = scratch.run().expect("synthetic sources are infallible");
        result.aggregate.total().predictions
    });
    measurements.push(Measurement {
        name: "suite_parallel",
        branches: suite_branches,
        seconds,
        allocations,
    });

    // 7. Segmented suite runs with a per-segment warmup prefix: replaying
    //    the warmup from the source (`engine_warm_replay`) versus restoring
    //    predictor snapshots from the on-disk warm-state cache
    //    (`engine_warm_cache`). The cache is populated by an untimed priming
    //    run, so the timed run restores every warm segment from disk; both
    //    measurements land in the trajectory so milestones carry the
    //    warm-start ratio. No allocation gate — segment workers and the
    //    cache's file I/O allocate by design.
    {
        use tage_sim::segment::{run_suite_segmented, run_suite_segmented_cached, SegmentOptions};
        use tage_sim::warmcache::WarmCache;

        let source_suite = SourceSuite::from_suite(&suite);
        let warm_options = RunOptions {
            warmup_branches: (per_trace as u64 / 4).max(1),
            ..RunOptions::default()
        };
        let segment_options = SegmentOptions::new(4, warm_options.warmup_branches);
        let workers = default_parallelism().min(4);

        let (replayed, seconds, allocations) = timed_counting(|| {
            run_suite_segmented(
                &config,
                &source_suite,
                per_trace,
                &warm_options,
                &segment_options,
                workers,
            )
            .expect("synthetic sources are infallible")
        });
        measurements.push(Measurement {
            name: "engine_warm_replay",
            branches: replayed.aggregate.total().predictions,
            seconds,
            allocations,
        });

        let cache_dir = std::env::temp_dir().join(format!(
            "tage-throughput-warmcache-{}-{branches}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&cache_dir);
        match WarmCache::new(&cache_dir) {
            Ok(cache) => {
                // Priming run: every warm segment misses, replays and stores.
                run_suite_segmented_cached(
                    &config,
                    &source_suite,
                    per_trace,
                    &warm_options,
                    &segment_options,
                    workers,
                    Some(&cache),
                )
                .expect("synthetic sources are infallible");
                let primed_misses = cache.misses();
                let (warmed, seconds, allocations) = timed_counting(|| {
                    run_suite_segmented_cached(
                        &config,
                        &source_suite,
                        per_trace,
                        &warm_options,
                        &segment_options,
                        workers,
                        Some(&cache),
                    )
                    .expect("synthetic sources are infallible")
                });
                assert_eq!(
                    warmed.aggregate.total(),
                    replayed.aggregate.total(),
                    "warm-cache runs must be byte-identical to replay runs"
                );
                assert_eq!(
                    cache.hits(),
                    primed_misses,
                    "the timed run must restore every warm segment from the cache"
                );
                measurements.push(Measurement {
                    name: "engine_warm_cache",
                    branches: warmed.aggregate.total().predictions,
                    seconds,
                    allocations,
                });
                let _ = std::fs::remove_dir_all(&cache_dir);
            }
            Err(error) => {
                eprintln!("skipping engine_warm_cache: cannot create {cache_dir:?}: {error}");
            }
        }
    }

    println!(
        "{:<22} {:>14} {:>10} {:>16} {:>18}",
        "measurement", "branches", "seconds", "branches/sec", "allocs/branch"
    );
    for m in &measurements {
        println!(
            "{:<22} {:>14} {:>10.3} {:>16.0} {:>18.6}",
            m.name,
            m.branches,
            m.seconds,
            m.branches_per_second(),
            m.allocations_per_branch()
        );
    }
    println!();
    println!("workers available: {}", default_parallelism());

    // The hot path must be allocation-free: fail loudly if it regresses.
    // Streaming over an in-memory slice shares the materialized path's
    // zero-alloc contract; the file stream is allowed its fixed open-time
    // cost (file handle, header name, one chunk buffer) but nothing that
    // scales with the branch count.
    const FILE_SOURCE_FIXED_ALLOWANCE: u64 = 64;
    let mut hot_path_clean = true;
    for m in &measurements {
        let budget = match m.name {
            "predict_hot_path"
            | "engine_single_trace"
            | "engine_streamed_slice"
            | "engine_multilane"
            | "suite_parallel" => Some(0),
            "engine_streamed_file" => Some(FILE_SOURCE_FIXED_ALLOWANCE),
            _ => None,
        };
        if let Some(budget) = budget {
            if m.allocations > budget {
                eprintln!(
                    "REGRESSION: {} performed {} heap allocations ({:.6} per branch, budget {}); \
                     the streaming hot path must stay allocation-free in steady state",
                    m.name,
                    m.allocations,
                    m.allocations_per_branch(),
                    budget
                );
                hot_path_clean = false;
            }
        }
    }

    // Append to the machine-readable trajectory (hand-rolled JSON: no deps).
    // Entries are seeded from --baseline when given (the committed milestone
    // file), otherwise from the output file itself; CI and verify.sh use a
    // committed baseline with an untracked --out so routine runs never dirty
    // the working tree.
    let seed_path = options.baseline.as_deref().unwrap_or(&options.out);
    // Never clobber history: the trajectory file is an append-only record
    // across PRs, so an existing file that cannot be read or yields no
    // entries (truncated, hand-mangled) blocks the write instead of being
    // silently replaced by this run's single entry.
    let mut entries = Vec::new();
    let mut trajectory_writable = true;
    match std::fs::read_to_string(seed_path) {
        Ok(existing) => {
            entries = trajectory::existing_entries(&existing);
            if entries.is_empty() && !existing.trim().is_empty() {
                eprintln!(
                    "refusing to build on {seed_path}: existing content has no extractable \
                     trajectory entries (corrupt file?) — fix or remove it first"
                );
                trajectory_writable = false;
            }
        }
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => {}
        Err(error) => {
            eprintln!("refusing to build on {seed_path}: cannot read existing file: {error}");
            trajectory_writable = false;
        }
    }

    // Regression gate (--check-regression): compare this run against the
    // newest seeded milestone carrying an `engine_single_trace` rate, before
    // this run's own entry lands in the list. When both the milestone and
    // this run also carry `engine_reference_nested_vec`, the comparison uses
    // the SoA/reference *speedup ratio* instead of the raw rate: the ratio
    // is measured same-host, same-process on both sides, so the gate does
    // not go red just because CI runs on a slower machine than the one that
    // recorded the milestone. Raw rates are the fallback for milestones
    // predating the reference measurement.
    let mut regression_ok = true;
    if let Some(tolerance) = options.regression_tolerance {
        let rate_of = |name: &str| {
            measurements
                .iter()
                .find(|m| m.name == name)
                .map(Measurement::branches_per_second)
                .filter(|rate| *rate > 0.0)
        };
        let milestone = entries.iter().rev().find_map(|entry| {
            trajectory::entry_measurement(entry, "engine_single_trace", "branches_per_sec")
                .filter(|rate| *rate > 0.0)
                .map(|rate| {
                    let reference = trajectory::entry_measurement(
                        entry,
                        "engine_reference_nested_vec",
                        "branches_per_sec",
                    )
                    .filter(|r| *r > 0.0);
                    (
                        trajectory::entry_label(entry).unwrap_or_default(),
                        rate,
                        reference,
                    )
                })
        });
        match (rate_of("engine_single_trace"), milestone) {
            (Some(current_rate), Some((milestone_label, milestone_rate, milestone_reference))) => {
                let (metric, current, baseline) =
                    match (rate_of("engine_reference_nested_vec"), milestone_reference) {
                        (Some(current_ref), Some(milestone_ref)) => (
                            "engine_single_trace/reference speedup",
                            current_rate / current_ref,
                            milestone_rate / milestone_ref,
                        ),
                        _ => (
                            "engine_single_trace branches/sec",
                            current_rate,
                            milestone_rate,
                        ),
                    };
                let floor = tolerance * baseline;
                if current < floor {
                    eprintln!(
                        "REGRESSION: {metric} at {current:.3} is below {tolerance} x the \
                         \"{milestone_label}\" milestone ({baseline:.3}, floor {floor:.3})"
                    );
                    regression_ok = false;
                } else {
                    println!(
                        "regression check OK: {metric} {current:.3} >= {tolerance} x {baseline:.3} \
                         (milestone \"{milestone_label}\")"
                    );
                }
            }
            _ => println!(
                "regression check skipped: no engine_single_trace milestone found in {seed_path}"
            ),
        }

        // Second gate: the multilane/scalar aggregate speedup ratio. Like
        // the SoA/reference ratio above it is measured same-host,
        // same-process on both sides, so it survives host-speed changes;
        // it catches the lockstep engine collapsing back to scalar speed.
        let multilane_milestone = entries.iter().rev().find_map(|entry| {
            let multilane =
                trajectory::entry_measurement(entry, "engine_multilane", "branches_per_sec")
                    .filter(|rate| *rate > 0.0)?;
            let single =
                trajectory::entry_measurement(entry, "engine_single_trace", "branches_per_sec")
                    .filter(|rate| *rate > 0.0)?;
            Some((
                trajectory::entry_label(entry).unwrap_or_default(),
                multilane / single,
            ))
        });
        match (
            rate_of("engine_multilane"),
            rate_of("engine_single_trace"),
            multilane_milestone,
        ) {
            (Some(multilane), Some(single), Some((milestone_label, baseline_ratio))) => {
                let current = multilane / single;
                let floor = tolerance * baseline_ratio;
                if current < floor {
                    eprintln!(
                        "REGRESSION: engine_multilane/engine_single_trace speedup at \
                         {current:.3} is below {tolerance} x the \"{milestone_label}\" \
                         milestone ({baseline_ratio:.3}, floor {floor:.3})"
                    );
                    regression_ok = false;
                } else {
                    println!(
                        "regression check OK: engine_multilane/engine_single_trace speedup \
                         {current:.3} >= {tolerance} x {baseline_ratio:.3} (milestone \
                         \"{milestone_label}\")"
                    );
                }
            }
            _ => println!(
                "multilane regression check skipped: no engine_multilane milestone found in \
                 {seed_path}"
            ),
        }
    }

    if trajectory_writable {
        let rendered: Vec<String> = measurements.iter().map(Measurement::to_json).collect();
        trajectory::push_entry(
            &mut entries,
            trajectory::render_entry(&options.label, &rendered),
        );
        let json = trajectory::render_file(default_parallelism(), &entries);
        match std::fs::write(&options.out, json) {
            Ok(()) => println!("wrote {} (entry \"{}\")", options.out, options.label),
            Err(error) => eprintln!("could not write {}: {error}", options.out),
        }
    }

    if !hot_path_clean || !trajectory_writable || !regression_ok {
        std::process::exit(1);
    }
}
