//! Minimal structural helpers for the hand-rolled JSON files the workspace
//! reads and writes (there is no JSON dependency).
//!
//! These are not a JSON parser: they do exactly the structural work the
//! benchmark trajectory, the campaign reports and the predictor-geometry
//! files need — extracting the objects of a named array (brace-balanced,
//! string-literal aware), pulling one string or numeric field out of an
//! object, and escaping strings for embedding.
//!
//! The helpers originated in `tage_bench::jsonish` and moved down here so
//! the `tage` crate can load [`geometry files`](../../tage) without a
//! dependency cycle; `tage_bench::jsonish` re-exports this module.

/// Extracts the raw JSON objects of an array field named `key` from
/// `json`, using brace balancing (string-literal aware). Returns an
/// empty vector if the field is absent.
pub fn extract_array_objects(json: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\":");
    let Some(start) = json.find(&needle) else {
        return Vec::new();
    };
    let Some(open) = json[start..].find('[') else {
        return Vec::new();
    };
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut object_start = None;
    for (offset, c) in json[start + open..].char_indices() {
        let position = start + open + offset;
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    object_start = Some(position);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(from) = object_start.take() {
                        objects.push(json[from..=position].to_string());
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    objects
}

/// Extracts the (unescaped) value of the string field `key` from a JSON
/// object, if present.
pub fn string_field(object: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let rest = object[start..].trim_start().strip_prefix('"')?;
    let mut value = String::new();
    let mut escaped = false;
    for c in rest.chars() {
        if escaped {
            value.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Some(value);
        } else {
            value.push(c);
        }
    }
    None
}

/// Extracts the value of the numeric field `key` from a JSON object, if
/// present and parseable.
pub fn number_field(object: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let rest = object[start..].trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the raw numeric values of a *flat* array field named `key`
/// (numbers only, no nested structure), if present. Returns `None` when the
/// field is absent and an empty vector when the array is empty.
pub fn number_array_field(object: &str, key: &str) -> Option<Vec<f64>> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let rest = object[start..].trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    let mut values = Vec::new();
    for item in rest[..end].split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        values.push(item.parse().ok()?);
    }
    Some(values)
}

/// Escapes a string for embedding in a JSON string literal: quotes and
/// backslashes are escaped, control characters are replaced by spaces.
pub fn escape(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if c.is_control() => escaped.push(' '),
            c => escaped.push(c),
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_extract_from_simple_objects() {
        let obj = r#"{"name": "engine", "rate": 123456.5, "neg": -2e3}"#;
        assert_eq!(string_field(obj, "name").as_deref(), Some("engine"));
        assert_eq!(number_field(obj, "rate"), Some(123456.5));
        assert_eq!(number_field(obj, "neg"), Some(-2000.0));
        assert_eq!(string_field(obj, "missing"), None);
        assert_eq!(number_field(obj, "name"), None);
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("a\nb"), "a b");
    }

    #[test]
    fn array_extraction_is_string_aware() {
        let json = r#"{"items": [ {"v": "has { and ] inside"}, {"v": 2} ]}"#;
        let objects = extract_array_objects(json, "items");
        assert_eq!(objects.len(), 2);
        assert_eq!(
            string_field(&objects[0], "v").as_deref(),
            Some("has { and ] inside")
        );
    }

    #[test]
    fn number_arrays_extract_flat_lists() {
        let obj = r#"{"lengths": [3, 8, 25, 80], "empty": [], "bad": [1, "x"]}"#;
        assert_eq!(
            number_array_field(obj, "lengths"),
            Some(vec![3.0, 8.0, 25.0, 80.0])
        );
        assert_eq!(number_array_field(obj, "empty"), Some(Vec::new()));
        assert_eq!(number_array_field(obj, "bad"), None);
        assert_eq!(number_array_field(obj, "missing"), None);
    }
}
