//! An N-thread SMT fetch-policy model driven by branch confidence.
//!
//! Controlling SMT resource allocation through the fetch policy is one of
//! the confidence applications the paper cites (Luo et al.). The model here
//! interleaves N traces as N hardware threads sharing one fetch port:
//! every cycle the port is granted to one thread. The confidence-driven
//! policy deprioritises threads with more unresolved low-confidence
//! branches in flight, so a thread that is likely on the wrong path does not
//! hog the shared front-end; the baseline policy is round-robin (ICOUNT-like
//! fairness without confidence information).
//!
//! Each hardware thread owns a [`SimEngine`] and fetches through
//! [`SimEngine::step_branch`], so the per-branch predict → classify → train
//! sequence is byte-for-byte the one every other experiment runs. The
//! staging cursors and the cycle loop are the shared
//! [`crate::interleave`] core (also behind the N-core shared-predictor
//! interference scenario); only the fetch-policy arbitration and the
//! in-flight bookkeeping live here. At N = 2 the generic loop is
//! bit-identical to the historical two-thread implementation — pinned by
//! this module's tests.

use core::fmt;

use tage::{TageConfig, TagePredictor};
use tage_confidence::{ConfidenceLevel, TageConfidenceClassifier};
use tage_traces::format::FormatError;
use tage_traces::source::{BranchSource, SliceSource};
use tage_traces::{BranchRecord, Trace};

use crate::engine::SimEngine;
use crate::interleave::{
    interleave, next_round_robin, InterleaveDriver, StopCondition, StreamLane,
};

/// Fetch arbitration policies for the SMT model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmtFetchPolicy {
    /// Alternate between the threads irrespective of confidence.
    RoundRobin,
    /// Grant fetch to the thread with fewest unresolved low- or
    /// medium-confidence branches (ties broken round-robin).
    ConfidenceCount,
}

impl fmt::Display for SmtFetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtFetchPolicy::RoundRobin => write!(f, "round-robin"),
            SmtFetchPolicy::ConfidenceCount => write!(f, "confidence-count"),
        }
    }
}

/// Per-thread outcome of the SMT model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SmtThreadResult {
    /// Branches fetched (and predicted) for this thread.
    pub branches: u64,
    /// Mispredictions for this thread.
    pub mispredictions: u64,
    /// Wrong-path fetch slots charged to this thread: branches fetched while
    /// the thread had an unresolved misprediction outstanding.
    pub wrong_path_slots: u64,
}

/// Outcome of the N-thread SMT fetch simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtNRunResult {
    /// Policy simulated.
    pub policy: SmtFetchPolicy,
    /// Per-thread results, in input order.
    pub threads: Vec<SmtThreadResult>,
    /// Total fetch cycles simulated.
    pub cycles: u64,
}

impl SmtNRunResult {
    /// Total wrong-path fetch slots over all threads — the quantity a
    /// confidence-aware policy is meant to reduce.
    pub fn total_wrong_path_slots(&self) -> u64 {
        self.threads.iter().map(|t| t.wrong_path_slots).sum()
    }

    /// Total branches fetched over all threads.
    pub fn total_branches(&self) -> u64 {
        self.threads.iter().map(|t| t.branches).sum()
    }
}

/// Outcome of the two-thread SMT fetch simulation (the classic pairing; a
/// fixed-arity view of [`SmtNRunResult`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SmtRunResult {
    /// Policy simulated.
    pub policy: SmtFetchPolicy,
    /// Per-thread results.
    pub threads: [SmtThreadResult; 2],
    /// Total fetch cycles simulated.
    pub cycles: u64,
}

impl SmtRunResult {
    /// Total wrong-path fetch slots over both threads.
    pub fn total_wrong_path_slots(&self) -> u64 {
        self.threads.iter().map(|t| t.wrong_path_slots).sum()
    }

    /// Total branches fetched over both threads.
    pub fn total_branches(&self) -> u64 {
        self.threads.iter().map(|t| t.branches).sum()
    }
}

impl fmt::Display for SmtRunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} branches, {} wrong-path slots",
            self.policy,
            self.total_branches(),
            self.total_wrong_path_slots()
        )
    }
}

/// Number of fetch cycles a branch stays "in flight" before it resolves in
/// the model.
const RESOLVE_DELAY: u64 = 8;

/// One hardware thread's model state: its private engine, the in-flight
/// branch window, and the accumulated counters.
struct SmtCore {
    engine: SimEngine<TagePredictor, TageConfidenceClassifier>,
    /// (resolve_cycle, was_not_high_confidence, was_mispredicted)
    in_flight: Vec<(u64, bool, bool)>,
    result: SmtThreadResult,
}

impl SmtCore {
    fn new(config: &TageConfig) -> Self {
        SmtCore {
            engine: SimEngine::new(
                TagePredictor::new(config.clone()),
                TageConfidenceClassifier::new(config),
            ),
            in_flight: Vec::new(),
            result: SmtThreadResult::default(),
        }
    }

    fn unresolved_low_confidence(&self) -> usize {
        self.in_flight.iter().filter(|(_, risky, _)| *risky).count()
    }

    fn has_unresolved_misprediction(&self) -> bool {
        self.in_flight.iter().any(|(_, _, miss)| *miss)
    }

    fn resolve(&mut self, cycle: u64) {
        self.in_flight
            .retain(|(resolve_at, _, _)| *resolve_at > cycle);
    }
}

/// The fetch-policy arbitration over N private cores, as an
/// [`InterleaveDriver`].
struct SmtDriver {
    cores: Vec<SmtCore>,
    policy: SmtFetchPolicy,
    last: usize,
}

impl InterleaveDriver for SmtDriver {
    fn begin_cycle(&mut self, cycle: u64) {
        for core in self.cores.iter_mut() {
            core.resolve(cycle);
        }
    }

    fn arbitrate(&mut self, _cycle: u64, alive: &[bool]) -> usize {
        let pick = match self.policy {
            SmtFetchPolicy::RoundRobin => next_round_robin(self.last, alive),
            SmtFetchPolicy::ConfidenceCount => {
                // Scan live lanes in rotation order starting after the last
                // grant; a strictly lower unresolved count wins, so ties
                // fall to the round-robin successor.
                let n = alive.len();
                let mut best: Option<(usize, usize)> = None;
                for step in 1..=n {
                    let lane = (self.last + step) % n;
                    if !alive[lane] {
                        continue;
                    }
                    let low = self.cores[lane].unresolved_low_confidence();
                    if best.is_none_or(|(_, count)| low < count) {
                        best = Some((lane, low));
                    }
                }
                best.expect("at least one lane is alive").0
            }
        };
        self.last = pick;
        pick
    }

    fn execute(&mut self, lane: usize, record: &BranchRecord, _gap: u64, cycle: u64) {
        let core = &mut self.cores[lane];
        // Fetching while an older branch of this thread is actually
        // mispredicted means this slot is wrong-path work.
        if core.has_unresolved_misprediction() {
            core.result.wrong_path_slots += 1;
        }
        let step = core
            .engine
            .step_branch(record.pc, record.taken, record.instructions(), &mut ());
        core.result.branches += 1;
        if step.mispredicted {
            core.result.mispredictions += 1;
        }
        core.in_flight.push((
            cycle + RESOLVE_DELAY,
            step.assessment.level != ConfidenceLevel::High,
            step.mispredicted,
        ));
    }
}

/// Runs the two-thread SMT fetch model: one conditional branch is fetched
/// per cycle, granted to one of the two threads according to `policy`.
///
/// As is customary for multiprogrammed studies, the simulation stops as soon
/// as either thread runs out of trace, so both threads are always present
/// and the policies are compared over the same co-run region.
pub fn simulate_smt(
    config: &TageConfig,
    thread0: &Trace,
    thread1: &Trace,
    policy: SmtFetchPolicy,
) -> SmtRunResult {
    simulate_smt_sources(
        config,
        [
            SliceSource::from_trace(thread0),
            SliceSource::from_trace(thread1),
        ],
        policy,
    )
    .expect("in-memory slice sources are infallible")
}

/// [`simulate_smt`] over two streaming [`BranchSource`]s: each hardware
/// thread pulls its records through a bounded cursor, so multi-gigabyte
/// co-run traces never materialize.
///
/// # Errors
///
/// Propagates the first [`FormatError`] either source reports.
pub fn simulate_smt_sources<S: BranchSource>(
    config: &TageConfig,
    sources: [S; 2],
    policy: SmtFetchPolicy,
) -> Result<SmtRunResult, FormatError> {
    let result = simulate_smt_n_sources(config, Vec::from(sources), policy)?;
    Ok(SmtRunResult {
        policy: result.policy,
        threads: [result.threads[0], result.threads[1]],
        cycles: result.cycles,
    })
}

/// The N-thread generalization: every source is one hardware thread; each
/// thread owns a private predictor + classifier, and one branch is fetched
/// per cycle under `policy`. The run stops when any thread exhausts its
/// stream (the multiprogrammed co-run convention).
///
/// At `sources.len() == 2` this is bit-identical to the historical
/// two-thread model.
///
/// # Errors
///
/// Propagates the first [`FormatError`] any source reports.
///
/// # Panics
///
/// Panics if `sources` is empty.
pub fn simulate_smt_n_sources<S: BranchSource>(
    config: &TageConfig,
    sources: Vec<S>,
    policy: SmtFetchPolicy,
) -> Result<SmtNRunResult, FormatError> {
    assert!(
        !sources.is_empty(),
        "the SMT model needs at least one thread"
    );
    let mut lanes: Vec<StreamLane<S>> = sources.into_iter().map(StreamLane::new).collect();
    let mut driver = SmtDriver {
        cores: lanes.iter().map(|_| SmtCore::new(config)).collect(),
        policy,
        last: lanes.len() - 1,
    };
    let cycles = interleave(&mut lanes, &mut driver, StopCondition::AnyExhausted)?;
    Ok(SmtNRunResult {
        policy,
        threads: driver.cores.into_iter().map(|c| c.result).collect(),
        cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::CounterAutomaton;
    use tage_traces::source::SyntheticSource;
    use tage_traces::suites;

    fn config() -> TageConfig {
        TageConfig::small().with_automaton(CounterAutomaton::paper_default())
    }

    /// The interleave refactor must not move a single counter: these exact
    /// values were produced by the pre-refactor hardcoded two-thread loop
    /// (FP-1 × MM-5 at 8 000 branches, TAGE-16K with the paper automaton).
    #[test]
    fn generic_interleaver_at_n2_matches_the_pre_refactor_model_bit_for_bit() {
        let suite = suites::cbp1_like();
        let a = suite.trace("FP-1").unwrap().generate(8_000);
        let b = suite.trace("MM-5").unwrap().generate(8_000);

        let rr = simulate_smt(&config(), &a, &b, SmtFetchPolicy::RoundRobin);
        assert_eq!(rr.cycles, 15_999);
        assert_eq!(
            rr.threads[0],
            SmtThreadResult {
                branches: 8_000,
                mispredictions: 472,
                wrong_path_slots: 1_274,
            }
        );
        assert_eq!(
            rr.threads[1],
            SmtThreadResult {
                branches: 7_999,
                mispredictions: 1_056,
                wrong_path_slots: 2_524,
            }
        );

        let cc = simulate_smt(&config(), &a, &b, SmtFetchPolicy::ConfidenceCount);
        assert_eq!(cc.cycles, 14_548);
        assert_eq!(
            cc.threads[0],
            SmtThreadResult {
                branches: 8_000,
                mispredictions: 472,
                wrong_path_slots: 1_399,
            }
        );
        assert_eq!(
            cc.threads[1],
            SmtThreadResult {
                branches: 6_548,
                mispredictions: 890,
                wrong_path_slots: 1_916,
            }
        );
    }

    #[test]
    fn both_policies_fetch_from_both_threads_until_one_finishes() {
        let suite = suites::cbp1_like();
        let a = suite.trace("FP-1").unwrap().generate(4_000);
        let b = suite.trace("MM-5").unwrap().generate(4_000);
        for policy in [SmtFetchPolicy::RoundRobin, SmtFetchPolicy::ConfidenceCount] {
            let result = simulate_smt(&config(), &a, &b, policy);
            // One fetch per cycle, and the run stops once either thread is
            // out of trace.
            assert_eq!(result.total_branches(), result.cycles, "{policy}");
            assert!(result.threads.iter().all(|t| t.branches > 0), "{policy}");
            assert!(
                result.threads.iter().any(|t| t.branches == 4_000),
                "{policy}"
            );
            assert!(result.total_branches() <= 8_000);
        }
    }

    #[test]
    fn confidence_policy_reduces_wrong_path_slots() {
        // Pair a very predictable thread with a poorly predictable one: the
        // confidence-aware policy should steer fetch away from the
        // mispredicting thread and reduce total wrong-path work.
        let suite = suites::cbp1_like();
        let a = suite.trace("FP-1").unwrap().generate(12_000);
        let b = suite.trace("MM-5").unwrap().generate(12_000);
        let rr = simulate_smt(&config(), &a, &b, SmtFetchPolicy::RoundRobin);
        let cc = simulate_smt(&config(), &a, &b, SmtFetchPolicy::ConfidenceCount);
        assert!(
            cc.total_wrong_path_slots() <= rr.total_wrong_path_slots(),
            "confidence {} vs round-robin {}",
            cc.total_wrong_path_slots(),
            rr.total_wrong_path_slots()
        );
    }

    #[test]
    fn source_driven_smt_matches_the_materialized_path() {
        let suite = suites::cbp1_like();
        let spec_a = suite.trace("FP-1").unwrap().clone();
        let spec_b = suite.trace("MM-5").unwrap().clone();
        let a = spec_a.generate(6_000);
        let b = spec_b.generate(6_000);
        for policy in [SmtFetchPolicy::RoundRobin, SmtFetchPolicy::ConfidenceCount] {
            let reference = simulate_smt(&config(), &a, &b, policy);
            let streamed = simulate_smt_sources(
                &config(),
                [
                    SyntheticSource::from_spec(&spec_a, 6_000),
                    SyntheticSource::from_spec(&spec_b, 6_000),
                ],
                policy,
            )
            .unwrap();
            assert_eq!(streamed, reference, "{policy}");
        }
    }

    #[test]
    fn four_way_smt_runs_every_thread_and_stops_at_the_first_exhausted() {
        let suite = suites::cbp1_like();
        let specs = ["FP-1", "MM-5", "INT-1", "SERV-2"];
        for policy in [SmtFetchPolicy::RoundRobin, SmtFetchPolicy::ConfidenceCount] {
            let sources: Vec<SyntheticSource> = specs
                .iter()
                .map(|name| SyntheticSource::from_spec(suite.trace(name).unwrap(), 3_000))
                .collect();
            let result = simulate_smt_n_sources(&config(), sources, policy).unwrap();
            assert_eq!(result.threads.len(), 4, "{policy}");
            assert_eq!(result.total_branches(), result.cycles, "{policy}");
            assert!(result.threads.iter().all(|t| t.branches > 0), "{policy}");
            assert!(
                result.threads.iter().any(|t| t.branches == 3_000),
                "{policy}: some thread must run to completion"
            );
        }
    }

    #[test]
    fn n_way_results_are_deterministic() {
        let suite = suites::cbp1_like();
        let run = || {
            let sources: Vec<SyntheticSource> = ["FP-1", "MM-5", "INT-1"]
                .iter()
                .map(|name| SyntheticSource::from_spec(suite.trace(name).unwrap(), 2_000))
                .collect();
            simulate_smt_n_sources(&config(), sources, SmtFetchPolicy::ConfidenceCount).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn display_mentions_policy() {
        let suite = suites::cbp1_like();
        let a = suite.trace("FP-1").unwrap().generate(500);
        let b = suite.trace("FP-2").unwrap().generate(500);
        let result = simulate_smt(&config(), &a, &b, SmtFetchPolicy::RoundRobin);
        assert!(format!("{result}").contains("round-robin"));
    }
}
