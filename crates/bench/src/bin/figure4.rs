//! Figure 4: misprediction rate (MKP) per prediction class for 7 CBP-2
//! traces, 64 Kbit predictor, standard automaton.

use tage::TageConfig;
use tage_bench::{branches_from_args, print_header};
use tage_confidence::PredictionClass;
use tage_sim::experiment::per_class_rates;
use tage_sim::report::{mkp, TextTable};
use tage_traces::suites;

/// The seven CBP-2 traces shown in the paper's Figures 4 and 6.
pub const FIGURE4_TRACES: [&str; 7] = [
    "164.gzip",
    "175.vpr",
    "176.gcc",
    "181.mcf",
    "186.crafty",
    "197.parser",
    "201.compress",
];

fn main() {
    let branches = branches_from_args();
    print_header(
        "Figure 4 — per-class misprediction rates, 64 Kbit, standard automaton",
        branches,
    );
    let rows = per_class_rates(
        &TageConfig::medium(),
        &suites::cbp2_like(),
        &FIGURE4_TRACES,
        branches,
    );
    let mut headers = vec!["trace"];
    headers.extend(PredictionClass::ALL.iter().map(|c| c.label()));
    headers.push("Average");
    let mut table = TextTable::new(headers);
    for row in &rows {
        let mut cells = vec![row.trace_name.clone()];
        cells.extend(row.mprate_mkp.iter().map(|&r| mkp(r)));
        cells.push(mkp(row.average_mkp));
        table.row(cells);
    }
    println!("misprediction rate per class, in MKP:");
    print!("{}", table.render());
}
