//! Predictor sanity checks on controlled micro-workloads, used to separate
//! "the TAGE implementation underperforms" from "the synthetic workload is
//! intrinsically unpredictable".

use tage::{TageConfig, TagePredictor};
use tage_predictors::{BimodalPredictor, BranchPredictor, GsharePredictor, PerceptronPredictor};
use tage_traces::synthetic::{SyntheticTraceBuilder, WorkloadProfile};
use tage_traces::{SplitMix64, Trace};

fn run_tage(config: &TageConfig, trace: &Trace, skip: usize) -> f64 {
    let mut p = TagePredictor::new(config.clone());
    let mut misses = 0u64;
    let mut total = 0u64;
    for (i, r) in trace.iter().filter(|r| r.kind.is_conditional()).enumerate() {
        let pred = p.predict(r.pc);
        if i >= skip {
            total += 1;
            if pred.taken != r.taken {
                misses += 1;
            }
        }
        p.update(r.pc, r.taken, &pred);
    }
    misses as f64 * 1000.0 / total as f64
}

fn run_other(p: &mut dyn BranchPredictor, trace: &Trace, skip: usize) -> f64 {
    let mut misses = 0u64;
    let mut total = 0u64;
    for (i, r) in trace.iter().filter(|r| r.kind.is_conditional()).enumerate() {
        let pred = p.predict(r.pc);
        if i >= skip {
            total += 1;
            if pred.taken != r.taken {
                misses += 1;
            }
        }
        p.update(r.pc, r.taken, &pred);
    }
    misses as f64 * 1000.0 / total as f64
}

fn main() {
    // 1. Interleaved deterministic patterns: 16 branches, each a short
    //    repeating pattern, executed in sequence. Fully predictable.
    let mut rng = SplitMix64::new(1);
    let mut records = Vec::new();
    let patterns: Vec<Vec<bool>> = (0..16)
        .map(|_| (0..6).map(|_| rng.chance(0.5)).collect())
        .collect();
    let mut positions = [0usize; 16];
    for _ in 0..20_000 {
        for b in 0..16 {
            let taken = patterns[b][positions[b]];
            positions[b] = (positions[b] + 1) % patterns[b].len();
            records.push(tage_traces::BranchRecord::conditional(
                0x1000 + b as u64 * 16,
                taken,
            ));
        }
    }
    let trace = Trace::from_records("patterns", records);
    println!("interleaved patterns (MKP, steady state):");
    println!(
        "  tage-16k   {:8.2}",
        run_tage(&TageConfig::small(), &trace, 50_000)
    );
    println!(
        "  tage-256k  {:8.2}",
        run_tage(&TageConfig::large(), &trace, 50_000)
    );
    println!(
        "  gshare-12  {:8.2}",
        run_other(&mut GsharePredictor::new(12, 12), &trace, 50_000)
    );
    println!(
        "  bimodal    {:8.2}",
        run_other(&mut BimodalPredictor::new(12), &trace, 50_000)
    );

    // 1b. Knock-out study: remove one behaviour family at a time from the
    //     integer profile to find where the misprediction floor comes from.
    let base = WorkloadProfile::integer_like();
    let mut variants = vec![("int-full", base.clone())];
    for family in ["loops", "biased", "pattern", "history", "path", "phased"] {
        let mut p = base.clone();
        match family {
            "loops" => p.mix.loop_weight = 0.0,
            "biased" => p.mix.biased_weight = 0.0,
            "pattern" => p.mix.pattern_weight = 0.0,
            "history" => p.mix.history_weight = 0.0,
            "path" => p.mix.path_weight = 0.0,
            _ => p.mix.phased_weight = 0.0,
        }
        variants.push((
            Box::leak(format!("int-no-{family}").into_boxed_str()) as &str,
            p,
        ));
    }
    let mut only_pattern = base.clone();
    only_pattern.mix.loop_weight = 0.0;
    only_pattern.mix.biased_weight = 0.0;
    only_pattern.mix.history_weight = 0.0;
    only_pattern.mix.path_weight = 0.0;
    only_pattern.mix.phased_weight = 0.0;
    variants.push(("int-only-pattern", only_pattern));
    let mut no_noise = base.clone();
    no_noise.noise = 0.0;
    variants.push(("int-no-noise", no_noise));
    let mut tight_locality = base.clone();
    tight_locality.routine_locality = 0.98;
    variants.push(("int-locality-98", tight_locality));
    println!("knock-out study (tage-64k MKP, steady state):");
    for (name, profile) in &variants {
        let trace = SyntheticTraceBuilder::new(*name, profile.clone(), 42).build(150_000);
        println!(
            "  {:<18} {:8.2}",
            name,
            run_tage(&TageConfig::medium(), &trace, 50_000)
        );
    }

    // 2. The FP-like synthetic workload: TAGE vs the baselines.
    for (name, profile) in [
        ("fp_like", WorkloadProfile::fp_like()),
        ("integer_like", WorkloadProfile::integer_like()),
        ("server_like", WorkloadProfile::server_like()),
    ] {
        let trace = SyntheticTraceBuilder::new(name, profile, 42).build(150_000);
        println!("{name} workload (MKP, steady state):");
        println!(
            "  tage-16k   {:8.2}",
            run_tage(&TageConfig::small(), &trace, 50_000)
        );
        println!(
            "  tage-64k   {:8.2}",
            run_tage(&TageConfig::medium(), &trace, 50_000)
        );
        println!(
            "  tage-256k  {:8.2}",
            run_tage(&TageConfig::large(), &trace, 50_000)
        );
        println!(
            "  gshare-14  {:8.2}",
            run_other(&mut GsharePredictor::new(14, 14), &trace, 50_000)
        );
        println!(
            "  perceptron {:8.2}",
            run_other(&mut PerceptronPredictor::new(512, 32), &trace, 50_000)
        );
        println!(
            "  bimodal    {:8.2}",
            run_other(&mut BimodalPredictor::new(13), &trace, 50_000)
        );
    }
}
