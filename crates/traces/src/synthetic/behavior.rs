//! Per-branch outcome models used by the synthetic workload generator.

use crate::rng::SplitMix64;

/// Number of global outcome bits retained for history-dependent behaviours.
///
/// This is larger than the longest history the evaluated predictors use
/// (300 bits for the 256 Kbit configuration), so history-correlated branches
/// can be made predictable — or not — for any of the three predictor sizes.
pub const HISTORY_BITS: usize = 512;

/// A shift register of recent *global* conditional-branch outcomes used by
/// the history-dependent behaviour models.
///
/// Bit 0 is the most recent outcome.
#[derive(Debug, Clone)]
pub struct GlobalOutcomeHistory {
    bits: [u64; HISTORY_BITS / 64],
}

impl GlobalOutcomeHistory {
    /// Creates an all-not-taken history.
    pub fn new() -> Self {
        GlobalOutcomeHistory {
            bits: [0; HISTORY_BITS / 64],
        }
    }

    /// Shifts a new outcome in as the most recent bit.
    pub fn push(&mut self, taken: bool) {
        let mut carry = u64::from(taken);
        for word in self.bits.iter_mut() {
            let next_carry = *word >> 63;
            *word = (*word << 1) | carry;
            carry = next_carry;
        }
    }

    /// Returns the outcome `lag` branches ago (`lag == 0` is the most
    /// recent). Lags beyond the retained window read as `false`.
    pub fn bit(&self, lag: usize) -> bool {
        if lag >= HISTORY_BITS {
            return false;
        }
        (self.bits[lag / 64] >> (lag % 64)) & 1 == 1
    }

    /// Hashes the most recent `depth` outcome bits into a 64-bit value.
    ///
    /// Used by the path-hash behaviour: two different recent paths of length
    /// `depth` map (with overwhelming probability) to different hashes.
    pub fn hash_recent(&self, depth: usize) -> u64 {
        let depth = depth.min(HISTORY_BITS);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let full_words = depth / 64;
        for w in 0..full_words {
            h = (h ^ self.bits[w]).wrapping_mul(0x1000_0000_01b3);
        }
        let rem = depth % 64;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            h = (h ^ (self.bits[full_words] & mask)).wrapping_mul(0x1000_0000_01b3);
        }
        h ^ (h >> 29)
    }
}

impl Default for GlobalOutcomeHistory {
    fn default() -> Self {
        GlobalOutcomeHistory::new()
    }
}

/// Identifies the family a [`BranchBehavior`] belongs to (used for workload
/// statistics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BehaviorKind {
    /// Loop exit branch: taken `period - 1` times, then not taken once.
    Loop,
    /// Bernoulli branch with a fixed taken probability.
    Biased,
    /// Fixed repeating outcome pattern.
    Pattern,
    /// Outcome is the parity of selected global-history lags.
    HistoryParity,
    /// Outcome is a deterministic function of the hashed recent path.
    PathHash,
    /// Switches between two sub-behaviours every `period` executions.
    Phased,
}

/// A per-static-branch outcome model.
///
/// The model is stepped once per dynamic execution of the branch and returns
/// the outcome. Models may consult the global outcome history (what the
/// *program* did recently) and a per-branch random stream.
#[derive(Debug, Clone)]
pub enum BranchBehavior {
    /// Loop exit branch with the given trip count.
    Loop {
        /// Loop trip count (the branch is taken `period - 1` times, then
        /// falls through once). Must be at least 1.
        period: u32,
        /// Current position within the loop.
        position: u32,
    },
    /// Bernoulli branch.
    Biased {
        /// Probability that the branch is taken.
        p_taken: f64,
    },
    /// Fixed repeating pattern of outcomes.
    Pattern {
        /// The outcome pattern (must be non-empty).
        pattern: Vec<bool>,
        /// Current position within the pattern.
        position: usize,
    },
    /// Outcome equals the XOR (parity) of the global outcomes at the given
    /// lags, optionally inverted and perturbed by noise.
    HistoryParity {
        /// History lags (in branches) whose parity determines the outcome.
        lags: Vec<usize>,
        /// If `true`, the parity is inverted.
        invert: bool,
        /// Probability of flipping the deterministic outcome (models
        /// data-dependent noise).
        noise: f64,
    },
    /// Outcome determined by hashing the most recent `depth` global outcomes
    /// into a fixed pseudo-random boolean function.
    PathHash {
        /// Number of recent global outcomes that determine the outcome.
        depth: usize,
        /// Salt making each branch's function unique.
        salt: u64,
        /// Probability of flipping the deterministic outcome.
        noise: f64,
    },
    /// Alternates between two sub-behaviours every `period` executions,
    /// producing misprediction bursts at the phase boundaries.
    Phased {
        /// Behaviour used in even phases.
        even: Box<BranchBehavior>,
        /// Behaviour used in odd phases.
        odd: Box<BranchBehavior>,
        /// Number of executions per phase.
        period: u32,
        /// Executions so far (drives the phase).
        executed: u32,
    },
}

impl BranchBehavior {
    /// Creates a loop-exit behaviour with the given trip count.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new_loop(period: u32) -> Self {
        assert!(period >= 1, "loop period must be at least 1");
        BranchBehavior::Loop {
            period,
            position: 0,
        }
    }

    /// Creates a Bernoulli behaviour with the given taken probability.
    pub fn biased(p_taken: f64) -> Self {
        BranchBehavior::Biased {
            p_taken: p_taken.clamp(0.0, 1.0),
        }
    }

    /// Creates a repeating-pattern behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty.
    pub fn pattern(pattern: Vec<bool>) -> Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        BranchBehavior::Pattern {
            pattern,
            position: 0,
        }
    }

    /// Creates a history-parity behaviour over the given lags.
    pub fn history_parity(lags: Vec<usize>, invert: bool, noise: f64) -> Self {
        BranchBehavior::HistoryParity {
            lags,
            invert,
            noise: noise.clamp(0.0, 1.0),
        }
    }

    /// Creates a path-hash behaviour of the given depth.
    pub fn path_hash(depth: usize, salt: u64, noise: f64) -> Self {
        BranchBehavior::PathHash {
            depth,
            salt,
            noise: noise.clamp(0.0, 1.0),
        }
    }

    /// Creates a phased behaviour switching between `even` and `odd` every
    /// `period` executions.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn phased(even: BranchBehavior, odd: BranchBehavior, period: u32) -> Self {
        assert!(period >= 1, "phase period must be at least 1");
        BranchBehavior::Phased {
            even: Box::new(even),
            odd: Box::new(odd),
            period,
            executed: 0,
        }
    }

    /// The behaviour family this model belongs to.
    pub fn kind(&self) -> BehaviorKind {
        match self {
            BranchBehavior::Loop { .. } => BehaviorKind::Loop,
            BranchBehavior::Biased { .. } => BehaviorKind::Biased,
            BranchBehavior::Pattern { .. } => BehaviorKind::Pattern,
            BranchBehavior::HistoryParity { .. } => BehaviorKind::HistoryParity,
            BranchBehavior::PathHash { .. } => BehaviorKind::PathHash,
            BranchBehavior::Phased { .. } => BehaviorKind::Phased,
        }
    }

    /// Restores the behaviour to its just-constructed state (loop and
    /// pattern positions, phase counters). Stateless models are untouched;
    /// nothing is allocated.
    pub fn reset(&mut self) {
        match self {
            BranchBehavior::Loop { position, .. } => *position = 0,
            BranchBehavior::Pattern { position, .. } => *position = 0,
            BranchBehavior::Phased {
                even,
                odd,
                executed,
                ..
            } => {
                *executed = 0;
                even.reset();
                odd.reset();
            }
            BranchBehavior::Biased { .. }
            | BranchBehavior::HistoryParity { .. }
            | BranchBehavior::PathHash { .. } => {}
        }
    }

    /// Computes the next outcome of this branch and advances its internal
    /// state.
    pub fn next_outcome(&mut self, history: &GlobalOutcomeHistory, rng: &mut SplitMix64) -> bool {
        match self {
            BranchBehavior::Loop { period, position } => {
                let taken = *position + 1 < *period;
                *position = (*position + 1) % *period;
                taken
            }
            BranchBehavior::Biased { p_taken } => rng.chance(*p_taken),
            BranchBehavior::Pattern { pattern, position } => {
                let taken = pattern[*position];
                *position = (*position + 1) % pattern.len();
                taken
            }
            BranchBehavior::HistoryParity {
                lags,
                invert,
                noise,
            } => {
                let mut parity = *invert;
                for &lag in lags.iter() {
                    parity ^= history.bit(lag);
                }
                if rng.chance(*noise) {
                    !parity
                } else {
                    parity
                }
            }
            BranchBehavior::PathHash { depth, salt, noise } => {
                let h = history.hash_recent(*depth) ^ *salt;
                // A fixed pseudo-random boolean function of the path: mix and
                // take one bit.
                let mixed = h
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(23)
                    .wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
                let outcome = mixed & (1 << 17) != 0;
                if rng.chance(*noise) {
                    !outcome
                } else {
                    outcome
                }
            }
            BranchBehavior::Phased {
                even,
                odd,
                period,
                executed,
            } => {
                let phase = (*executed / *period) % 2;
                *executed = executed.wrapping_add(1);
                if phase == 0 {
                    even.next_outcome(history, rng)
                } else {
                    odd.next_outcome(history, rng)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(behavior: &mut BranchBehavior, n: usize) -> Vec<bool> {
        let mut rng = SplitMix64::new(1);
        let mut history = GlobalOutcomeHistory::new();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let taken = behavior.next_outcome(&history, &mut rng);
            history.push(taken);
            out.push(taken);
        }
        out
    }

    #[test]
    fn global_history_push_and_bit() {
        let mut h = GlobalOutcomeHistory::new();
        h.push(true);
        h.push(false);
        h.push(true);
        // Most recent first: true, false, true.
        assert!(h.bit(0));
        assert!(!h.bit(1));
        assert!(h.bit(2));
        assert!(!h.bit(3));
        assert!(!h.bit(HISTORY_BITS + 5));
    }

    #[test]
    fn global_history_shifts_across_word_boundaries() {
        let mut h = GlobalOutcomeHistory::new();
        h.push(true);
        for _ in 0..100 {
            h.push(false);
        }
        assert!(h.bit(100));
        assert!(!h.bit(99));
        assert!(!h.bit(101));
    }

    #[test]
    fn hash_recent_distinguishes_paths_and_respects_depth() {
        let mut a = GlobalOutcomeHistory::new();
        let mut b = GlobalOutcomeHistory::new();
        a.push(true);
        b.push(false);
        assert_ne!(a.hash_recent(8), b.hash_recent(8));
        // Differences beyond the hashed depth do not matter.
        let mut c = GlobalOutcomeHistory::new();
        let mut d = GlobalOutcomeHistory::new();
        for i in 0..40 {
            c.push(i % 2 == 0);
            d.push(i % 2 == 0);
        }
        d.push(true);
        c.push(true);
        // c and d agree on the most recent 8 bits (both pushed same last bit,
        // and the previous 7 bits of the alternating pattern also agree).
        assert_eq!(c.hash_recent(8), d.hash_recent(8));
    }

    #[test]
    fn loop_behavior_is_periodic() {
        let mut b = BranchBehavior::new_loop(4);
        let outcomes = run(&mut b, 12);
        assert_eq!(
            outcomes,
            vec![true, true, true, false, true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn loop_period_one_is_never_taken() {
        let mut b = BranchBehavior::new_loop(1);
        assert!(run(&mut b, 5).iter().all(|&t| !t));
    }

    #[test]
    #[should_panic(expected = "loop period must be at least 1")]
    fn loop_period_zero_panics() {
        BranchBehavior::new_loop(0);
    }

    #[test]
    fn biased_behavior_matches_probability() {
        let mut b = BranchBehavior::biased(0.8);
        let outcomes = run(&mut b, 20_000);
        let rate = outcomes.iter().filter(|&&t| t).count() as f64 / outcomes.len() as f64;
        assert!((0.77..0.83).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn biased_probability_is_clamped() {
        assert!(matches!(
            BranchBehavior::biased(7.0),
            BranchBehavior::Biased { p_taken } if p_taken == 1.0
        ));
    }

    #[test]
    fn pattern_behavior_repeats() {
        let mut b = BranchBehavior::pattern(vec![true, false, false]);
        assert_eq!(run(&mut b, 6), vec![true, false, false, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "pattern must be non-empty")]
    fn empty_pattern_panics() {
        BranchBehavior::pattern(vec![]);
    }

    #[test]
    fn history_parity_without_noise_is_deterministic_given_history() {
        let mut history = GlobalOutcomeHistory::new();
        history.push(true); // lag 0
        history.push(false); // becomes lag 0, true becomes lag 1
        let mut rng = SplitMix64::new(0);
        let mut b = BranchBehavior::history_parity(vec![0, 1], false, 0.0);
        // lag0 = false, lag1 = true => parity = true.
        assert!(b.next_outcome(&history, &mut rng));
        let mut inv = BranchBehavior::history_parity(vec![0, 1], true, 0.0);
        assert!(!inv.next_outcome(&history, &mut rng));
    }

    #[test]
    fn path_hash_is_deterministic_per_path_and_salt() {
        let mut history = GlobalOutcomeHistory::new();
        for i in 0..32 {
            history.push(i % 3 == 0);
        }
        let mut rng = SplitMix64::new(0);
        let mut a = BranchBehavior::path_hash(16, 1, 0.0);
        let mut b = BranchBehavior::path_hash(16, 1, 0.0);
        assert_eq!(
            a.next_outcome(&history, &mut rng),
            b.next_outcome(&history, &mut rng)
        );
    }

    #[test]
    fn phased_behavior_switches_between_sub_behaviors() {
        let mut b = BranchBehavior::phased(
            BranchBehavior::pattern(vec![true]),
            BranchBehavior::pattern(vec![false]),
            3,
        );
        let outcomes = run(&mut b, 9);
        assert_eq!(
            outcomes,
            vec![true, true, true, false, false, false, true, true, true]
        );
    }

    #[test]
    fn kind_reports_family() {
        assert_eq!(BranchBehavior::new_loop(2).kind(), BehaviorKind::Loop);
        assert_eq!(BranchBehavior::biased(0.5).kind(), BehaviorKind::Biased);
        assert_eq!(
            BranchBehavior::pattern(vec![true]).kind(),
            BehaviorKind::Pattern
        );
        assert_eq!(
            BranchBehavior::history_parity(vec![1], false, 0.0).kind(),
            BehaviorKind::HistoryParity
        );
        assert_eq!(
            BranchBehavior::path_hash(4, 0, 0.0).kind(),
            BehaviorKind::PathHash
        );
        assert_eq!(
            BranchBehavior::phased(BranchBehavior::biased(0.5), BranchBehavior::biased(0.5), 10)
                .kind(),
            BehaviorKind::Phased
        );
    }
}
