//! Fetch gating / throttling driven by the storage-free confidence estimate —
//! the motivating application from the paper's introduction (energy saved on
//! wrong-path fetch versus fetch slots lost on gated correct predictions).
//!
//! Run with: `cargo run --release --example fetch_gating`

use tage_confidence_suite::sim::gating::{simulate_gating, GatingModel, GatingPolicy};
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig};
use tage_confidence_suite::traces::suites;

fn main() {
    let config = TageConfig::medium().with_automaton(CounterAutomaton::paper_default());
    let model = GatingModel::default();
    let suite = suites::cbp1_like();

    println!(
        "{:<10} {:<28} {:>14} {:>14} {:>14}",
        "trace", "policy", "waste/branch", "loss/branch", "avoided/branch"
    );
    for name in ["FP-2", "INT-1", "MM-5", "SERV-2"] {
        let trace = suite.trace(name).expect("trace exists").generate(200_000);
        for (label, policy) in [
            ("never gate", GatingPolicy::never()),
            ("gate low", GatingPolicy::gate_low()),
            (
                "gate low + throttle medium",
                GatingPolicy::gate_low_throttle_medium(),
            ),
        ] {
            let result = simulate_gating(&config, &trace, policy, &model);
            println!(
                "{:<10} {:<28} {:>14.2} {:>14.2} {:>14.2}",
                name,
                label,
                result.waste_per_branch(),
                result.loss_per_branch(),
                result.wrong_path_avoided / result.branches as f64,
            );
        }
        println!();
    }
    println!("waste = wrong-path instructions fetched per branch (front-end energy proxy)");
    println!("loss  = fetch slots lost on gated/throttled correct predictions (performance proxy)");
}
