//! Enumerable baseline-predictor configurations for sweep grids.
//!
//! The campaign runner (`tage-bench`) expands declarative grids over
//! predictor kinds. For the baseline predictors of this crate the grid axis
//! values are the variants of [`BaselinePredictorSpec`]: each one is a named,
//! fully-parameterised configuration that can be parsed from a CLI token,
//! enumerated for `--list`, and stamped into a cold predictor instance per
//! sweep point.

use crate::{
    BimodalPredictor, BranchPredictor, GehlPredictor, GsharePredictor, PerceptronPredictor,
};

/// A named, buildable baseline-predictor configuration — one value of the
/// predictor axis of a sweep grid.
///
/// The parameters mirror the configurations the comparison experiments use:
/// moderate table sizes that fit the synthetic traces' footprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselinePredictorSpec {
    /// Smith's 2-bit bimodal table, `2^12` counters.
    Bimodal,
    /// McFarling's gshare, `2^14` counters × 14 history bits.
    Gshare,
    /// Hashed perceptron, 256 rows × 24 history bits.
    Perceptron,
    /// O-GEHL-style predictor, 6 tables × `2^11` counters, histories 2..64.
    Gehl,
}

impl BaselinePredictorSpec {
    /// Every baseline configuration, in grid-axis order.
    pub const ALL: [BaselinePredictorSpec; 4] = [
        BaselinePredictorSpec::Bimodal,
        BaselinePredictorSpec::Gshare,
        BaselinePredictorSpec::Perceptron,
        BaselinePredictorSpec::Gehl,
    ];

    /// The stable grid token naming this configuration (what `--predictors`
    /// parses and the campaign report records).
    pub fn token(&self) -> &'static str {
        match self {
            BaselinePredictorSpec::Bimodal => "bimodal",
            BaselinePredictorSpec::Gshare => "gshare",
            BaselinePredictorSpec::Perceptron => "perceptron",
            BaselinePredictorSpec::Gehl => "gehl",
        }
    }

    /// Parses a grid token back into a configuration.
    pub fn parse(token: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|spec| spec.token() == token)
    }

    /// Builds a cold predictor instance of this configuration.
    pub fn build(&self) -> Box<dyn BranchPredictor + Send> {
        match self {
            BaselinePredictorSpec::Bimodal => Box::new(BimodalPredictor::new(12)),
            BaselinePredictorSpec::Gshare => Box::new(GsharePredictor::new(14, 14)),
            BaselinePredictorSpec::Perceptron => Box::new(PerceptronPredictor::new(256, 24)),
            BaselinePredictorSpec::Gehl => Box::new(GehlPredictor::new(6, 11, 2, 64)),
        }
    }

    /// A margin threshold suited to this predictor's self-confidence scale:
    /// counter-based predictors saturate at tiny margins, neural predictors
    /// produce wide sums.
    pub fn self_confidence_threshold(&self) -> i64 {
        match self {
            BaselinePredictorSpec::Bimodal | BaselinePredictorSpec::Gshare => 1,
            BaselinePredictorSpec::Perceptron => 40,
            BaselinePredictorSpec::Gehl => 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_and_are_unique() {
        for spec in BaselinePredictorSpec::ALL {
            assert_eq!(BaselinePredictorSpec::parse(spec.token()), Some(spec));
        }
        let mut tokens: Vec<&str> = BaselinePredictorSpec::ALL.map(|s| s.token()).to_vec();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), BaselinePredictorSpec::ALL.len());
        assert_eq!(BaselinePredictorSpec::parse("tage-16k"), None);
    }

    #[test]
    fn every_spec_builds_a_working_predictor() {
        for spec in BaselinePredictorSpec::ALL {
            let mut predictor = spec.build();
            let prediction = predictor.predict(0x4000);
            predictor.update(0x4000, true, &prediction);
            assert!(predictor.storage_bits() > 0, "{}", spec.token());
            assert!(spec.self_confidence_threshold() > 0);
        }
    }

    #[test]
    fn built_instances_are_independent() {
        let spec = BaselinePredictorSpec::Gshare;
        let mut a = spec.build();
        let b = spec.build();
        for _ in 0..8 {
            let p = a.predict(0x77);
            a.update(0x77, true, &p);
        }
        let mut b = b;
        assert_eq!(b.predict(0x77).margin, 1, "sibling stays cold");
    }
}
