//! Running one TAGE predictor over one trace — a thin assembly of the
//! generic [`SimEngine`]: the TAGE predictor as the [`PredictorCore`], the
//! storage-free classifier as the [`ConfidenceScheme`], a [`ReportObserver`]
//! for the statistics and (optionally) the adaptive saturation controller as
//! a second observer steering the predictor mid-run.
//!
//! [`PredictorCore`]: tage_predictors::PredictorCore
//! [`ConfidenceScheme`]: tage_confidence::ConfidenceScheme

use core::fmt;

use tage::{TageBlueprint, TagePrediction, TagePredictor};
use tage_confidence::{AdaptiveSaturationController, ConfidenceReport, TageConfidenceClassifier};
use tage_traces::format::FormatError;
use tage_traces::source::{BranchSource, SliceSource};
use tage_traces::Trace;

use crate::engine::{BranchEvent, EngineObserver, ReportObserver, SimEngine};

/// Options controlling a trace run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Number of leading conditional branches excluded from the statistics
    /// (the predictor still trains on them). The paper's traces are long
    /// enough that warm-up is part of the measurement; the default is
    /// therefore zero, but experiments studying steady-state behaviour can
    /// skip a prefix.
    pub warmup_branches: u64,
    /// Length of the `medium-conf-bim` recency window (8 in the paper).
    pub bim_miss_window: u32,
    /// When set, the adaptive saturation-probability controller of
    /// Section 6.2 runs alongside the predictor with this target (MKP on the
    /// high-confidence class).
    pub adaptive_target_mkp: Option<f64>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            warmup_branches: 0,
            bim_miss_window: tage_confidence::classifier::DEFAULT_BIM_MISS_WINDOW,
            adaptive_target_mkp: None,
        }
    }
}

impl RunOptions {
    /// Options with the adaptive controller enabled at the paper's 10 MKP
    /// target.
    pub fn adaptive() -> Self {
        RunOptions {
            adaptive_target_mkp: Some(tage_confidence::adaptive::DEFAULT_TARGET_MKP),
            ..RunOptions::default()
        }
    }
}

/// The outcome of running one predictor configuration over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRunResult {
    /// Name of the trace.
    pub trace_name: String,
    /// Name of the predictor configuration.
    pub config_name: String,
    /// Per-class confidence statistics (including instruction counts for
    /// MPKI reporting).
    pub report: ConfidenceReport,
    /// Number of conditional branches simulated (after warm-up exclusion).
    pub conditional_branches: u64,
    /// Total instructions attributed to the measured region.
    pub instructions: u64,
    /// Saturation probability in effect at the end of the run (only differs
    /// from the configured automaton when the adaptive controller runs).
    pub final_saturation_probability: f64,
}

impl TraceRunResult {
    /// Overall misprediction rate in mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        self.report.mpki()
    }

    /// Overall misprediction rate in mispredictions per kilo-prediction.
    pub fn mkp(&self) -> f64 {
        self.report.mkp()
    }
}

impl fmt::Display for TraceRunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {:.2} MPKI ({:.1} MKP over {} branches)",
            self.config_name,
            self.trace_name,
            self.mpki(),
            self.mkp(),
            self.conditional_branches
        )
    }
}

/// The adaptive saturation controller of Section 6.2 as an engine observer:
/// it watches high-confidence outcomes and re-installs the automaton on the
/// predictor whenever an adaptation window closes. It runs after the report
/// observer and before the predictor trains, exactly as the bespoke loop
/// did.
pub(crate) struct AdaptiveObserver {
    pub(crate) controller: AdaptiveSaturationController,
}

impl<'p> EngineObserver<&'p mut TagePredictor> for AdaptiveObserver {
    fn on_branch(
        &mut self,
        predictor: &mut &'p mut TagePredictor,
        event: &BranchEvent<'_, TagePrediction>,
    ) {
        if let Some(automaton) = self
            .controller
            .observe(event.assessment.level, event.mispredicted)
        {
            predictor.set_automaton(automaton);
        }
    }
}

/// Runs a TAGE predictor built from `blueprint` — a [`tage::TageConfig`]
/// preset or an explicit [`tage::TageGeometry`] — over `trace`, classifying
/// every conditional-branch prediction with the storage-free confidence
/// classifier.
///
/// Non-conditional records (calls, returns, jumps) contribute to the
/// instruction count but are not predicted, as in the paper's methodology.
///
/// This is the materialized-trace adapter over [`run_source`]; results are
/// bit-identical across the two entry points.
pub fn run_trace(
    blueprint: &dyn TageBlueprint,
    trace: &Trace,
    options: &RunOptions,
) -> TraceRunResult {
    let mut source = SliceSource::from_trace(trace);
    run_source(blueprint, &mut source, options).expect("in-memory slice sources are infallible")
}

/// Runs a TAGE predictor built from `config` over a streaming
/// [`BranchSource`] — the out-of-core counterpart of [`run_trace`]: the only
/// record memory in flight is the engine's fixed batch buffer (plus whatever
/// fixed chunk the source itself holds).
///
/// # Errors
///
/// Propagates the first [`FormatError`] the source reports.
///
/// # Example
///
/// ```
/// use tage::TageConfig;
/// use tage_sim::runner::{run_source, RunOptions};
/// use tage_traces::source::SyntheticSource;
/// use tage_traces::suites;
///
/// let spec = suites::cbp1_like().trace("INT-1").unwrap().clone();
/// let mut source = SyntheticSource::from_spec(&spec, 5_000);
/// let result = run_source(&TageConfig::small(), &mut source, &RunOptions::default()).unwrap();
/// assert_eq!(result.trace_name, "INT-1");
/// assert_eq!(result.conditional_branches, 5_000);
/// ```
pub fn run_source<S: BranchSource + ?Sized>(
    blueprint: &dyn TageBlueprint,
    source: &mut S,
    options: &RunOptions,
) -> Result<TraceRunResult, FormatError> {
    let mut predictor = TagePredictor::new(blueprint);
    run_source_with_predictor(&mut predictor, source, options)
}

/// [`run_source`] with an extra [`EngineObserver`] riding along — the hook
/// the scenario observers (`crate::scenarios`) use to watch the *exact*
/// canonical TAGE + storage-free run without duplicating its assembly.
///
/// The extra observer runs after the report observer (and the adaptive
/// controller, when enabled) for every branch and instruction notification;
/// it does not alter the prediction stream, so the returned
/// [`TraceRunResult`] is bit-identical to the plain [`run_source`] run.
///
/// # Errors
///
/// Propagates the first [`FormatError`] the source reports.
pub fn run_source_observed<S, O>(
    blueprint: &dyn TageBlueprint,
    source: &mut S,
    options: &RunOptions,
    extra: &mut O,
) -> Result<TraceRunResult, FormatError>
where
    S: BranchSource + ?Sized,
    O: for<'p> EngineObserver<&'p mut TagePredictor>,
{
    let mut predictor = TagePredictor::new(blueprint);
    run_source_with_predictor_observed(&mut predictor, source, options, extra)
}

/// Runs an already-constructed predictor over a trace (allowing state to be
/// carried across traces, or a pre-warmed predictor to be reused).
pub fn run_trace_with_predictor(
    predictor: &mut TagePredictor,
    trace: &Trace,
    options: &RunOptions,
) -> TraceRunResult {
    let mut source = SliceSource::from_trace(trace);
    run_source_with_predictor(predictor, &mut source, options)
        .expect("in-memory slice sources are infallible")
}

/// Runs an already-constructed predictor over a streaming source.
///
/// # Errors
///
/// Propagates the first [`FormatError`] the source reports.
pub fn run_source_with_predictor<S: BranchSource + ?Sized>(
    predictor: &mut TagePredictor,
    source: &mut S,
    options: &RunOptions,
) -> Result<TraceRunResult, FormatError> {
    run_source_with_predictor_observed(predictor, source, options, &mut ())
}

/// [`run_source_with_predictor`] with an extra observer riding along (see
/// [`run_source_observed`]).
///
/// # Errors
///
/// Propagates the first [`FormatError`] the source reports.
pub fn run_source_with_predictor_observed<S, O>(
    predictor: &mut TagePredictor,
    source: &mut S,
    options: &RunOptions,
    extra: &mut O,
) -> Result<TraceRunResult, FormatError>
where
    S: BranchSource + ?Sized,
    O: for<'p> EngineObserver<&'p mut TagePredictor>,
{
    let geometry = predictor.geometry().clone();
    let classifier = TageConfidenceClassifier::with_window(&geometry, options.bim_miss_window);
    let mut adaptive = options.adaptive_target_mkp.map(|target| AdaptiveObserver {
        controller: AdaptiveSaturationController::with_parameters(target, 16 * 1024),
    });
    if let Some(observer) = adaptive.as_ref() {
        predictor.set_automaton(observer.controller.automaton());
    }

    let trace_name = source.name().to_string();
    let mut report = ReportObserver::default();
    let mut engine =
        SimEngine::new(&mut *predictor, classifier).with_warmup(options.warmup_branches);
    let summary = engine.run_source(source, &mut (&mut report, adaptive.as_mut(), extra))?;

    Ok(TraceRunResult {
        trace_name,
        config_name: geometry.name(),
        report: report.report,
        conditional_branches: summary.measured_branches,
        instructions: summary.measured_instructions,
        final_saturation_probability: predictor.geometry().automaton.saturation_probability(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::{CounterAutomaton, TageConfig};
    use tage_confidence::{ConfidenceLevel, PredictionClass};
    use tage_traces::suites;

    fn small_trace(n: usize) -> Trace {
        suites::cbp1_like().trace("INT-1").unwrap().generate(n)
    }

    #[test]
    fn run_counts_every_measured_conditional_branch() {
        let trace = small_trace(4_000);
        let result = run_trace(&TageConfig::small(), &trace, &RunOptions::default());
        assert_eq!(result.conditional_branches, 4_000);
        assert_eq!(result.report.total().predictions, 4_000);
        assert_eq!(result.instructions, trace.instruction_count());
        assert!(result.mpki() > 0.0);
        assert!(result.mkp() > result.mpki());
    }

    #[test]
    fn warmup_excludes_a_prefix_from_statistics() {
        let trace = small_trace(4_000);
        let options = RunOptions {
            warmup_branches: 1_000,
            ..RunOptions::default()
        };
        let result = run_trace(&TageConfig::small(), &trace, &options);
        assert_eq!(result.report.total().predictions, 3_000);
        assert!(result.instructions < trace.instruction_count());
    }

    #[test]
    fn every_prediction_lands_in_some_class() {
        let trace = small_trace(3_000);
        let result = run_trace(&TageConfig::small(), &trace, &RunOptions::default());
        let sum: u64 = PredictionClass::ALL
            .iter()
            .map(|&c| result.report.class(c).predictions)
            .sum();
        assert_eq!(sum, 3_000);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = small_trace(3_000);
        let a = run_trace(&TageConfig::medium(), &trace, &RunOptions::default());
        let b = run_trace(&TageConfig::medium(), &trace, &RunOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn larger_predictors_do_not_mispredict_more() {
        let trace = small_trace(30_000);
        let small = run_trace(&TageConfig::small(), &trace, &RunOptions::default());
        let large = run_trace(&TageConfig::large(), &trace, &RunOptions::default());
        assert!(
            large.report.total().mispredictions
                <= small.report.total().mispredictions + small.report.total().predictions / 100,
            "large {} vs small {}",
            large.report.total().mispredictions,
            small.report.total().mispredictions
        );
    }

    #[test]
    fn adaptive_run_tracks_probability() {
        let trace = small_trace(30_000);
        let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
        let result = run_trace(&config, &trace, &RunOptions::adaptive());
        assert!(result.final_saturation_probability >= 1.0 / 1024.0 - 1e-12);
        assert!(result.final_saturation_probability <= 1.0 + 1e-12);
    }

    #[test]
    fn low_confidence_class_has_higher_miss_rate_than_high() {
        let trace = small_trace(60_000);
        let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
        let result = run_trace(&config, &trace, &RunOptions::default());
        let low = result.report.level_mprate_mkp(ConfidenceLevel::Low);
        let high = result.report.level_mprate_mkp(ConfidenceLevel::High);
        assert!(
            low > high * 3.0,
            "low {low} MKP should be far above high {high} MKP"
        );
    }

    #[test]
    fn reusing_a_predictor_keeps_training_it() {
        let trace = small_trace(5_000);
        let mut predictor = TagePredictor::new(TageConfig::small());
        let first = run_trace_with_predictor(&mut predictor, &trace, &RunOptions::default());
        let second = run_trace_with_predictor(&mut predictor, &trace, &RunOptions::default());
        assert!(
            second.report.total().mispredictions <= first.report.total().mispredictions,
            "a warmed predictor should not get worse on the same trace"
        );
    }

    #[test]
    fn display_mentions_names() {
        let trace = small_trace(1_000);
        let result = run_trace(&TageConfig::small(), &trace, &RunOptions::default());
        let s = format!("{result}");
        assert!(s.contains("INT-1"));
        assert!(s.contains("TAGE-16K"));
    }
}
