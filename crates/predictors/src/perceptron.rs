//! The hashed perceptron branch predictor.

use tage_traces::snapshot::{fnv1a64, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::history::HistoryRegister;
use crate::predictor::{BranchPredictor, Prediction};
use crate::snapshot_util::{read_history, write_history};

/// A perceptron branch predictor (Jiménez & Lin).
///
/// Each branch hashes to a weight vector; the prediction is the sign of the
/// dot product between the weights and the global history (encoded ±1), plus
/// a bias weight. The absolute value of the sum is the *self-confidence*
/// margin used by perceptron-based confidence estimation (Akkary et al.,
/// Jiménez & Lin), one of the baselines the paper compares against.
///
/// # Example
///
/// ```
/// use tage_predictors::{BranchPredictor, PerceptronPredictor};
///
/// let mut p = PerceptronPredictor::new(256, 16);
/// let pred = p.predict(0xbeef00);
/// p.update(0xbeef00, false, &pred);
/// ```
#[derive(Debug, Clone)]
pub struct PerceptronPredictor {
    /// `rows x (history_len + 1)` weights; weight 0 is the bias.
    weights: Vec<Vec<i16>>,
    history: HistoryRegister,
    history_len: usize,
    /// Training threshold θ ≈ 1.93 * h + 14 (Jiménez & Lin).
    threshold: i32,
    weight_bits: u8,
}

impl PerceptronPredictor {
    /// Creates a perceptron predictor with `rows` weight vectors over
    /// `history_len` history bits.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or `history_len` is zero or greater than 256.
    pub fn new(rows: usize, history_len: usize) -> Self {
        assert!(rows > 0, "rows must be non-zero");
        assert!(
            (1..=256).contains(&history_len),
            "history_len must be in 1..=256"
        );
        let threshold = (1.93 * history_len as f64 + 14.0) as i32;
        PerceptronPredictor {
            weights: vec![vec![0i16; history_len + 1]; rows],
            history: HistoryRegister::new(history_len),
            history_len,
            threshold,
            weight_bits: 8,
        }
    }

    /// Creates a perceptron predictor from its declarative spec.
    ///
    /// # Panics
    ///
    /// Panics when the spec violates the constructor's parameter ranges.
    pub fn from_spec(spec: &crate::spec::PerceptronSpec) -> Self {
        Self::new(spec.rows, spec.history_bits)
    }

    /// The training threshold θ.
    pub fn threshold(&self) -> i32 {
        self.threshold
    }

    fn row(&self, pc: u64) -> usize {
        ((pc >> 2) % self.weights.len() as u64) as usize
    }

    fn sum(&self, pc: u64) -> i32 {
        let w = &self.weights[self.row(pc)];
        let mut sum = i32::from(w[0]);
        for i in 0..self.history_len {
            let x = if self.history.bit(i) { 1 } else { -1 };
            sum += i32::from(w[i + 1]) * x;
        }
        sum
    }

    fn spec_string(&self) -> String {
        format!(
            "perceptron|rows={}|history_len={}|weight_bits={}",
            self.weights.len(),
            self.history_len,
            self.weight_bits
        )
    }

    fn saturating_adjust(weight: &mut i16, up: bool, bits: u8) {
        let max = (1i16 << (bits - 1)) - 1;
        let min = -(1i16 << (bits - 1));
        if up {
            if *weight < max {
                *weight += 1;
            }
        } else if *weight > min {
            *weight -= 1;
        }
    }
}

impl BranchPredictor for PerceptronPredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        let sum = self.sum(pc);
        Prediction::new(sum >= 0, i64::from(sum.abs()))
    }

    fn update(&mut self, pc: u64, taken: bool, prediction: &Prediction) {
        let sum = self.sum(pc);
        let mispredicted = (sum >= 0) != taken;
        // The margin below threshold triggers training even on a correct
        // prediction (standard perceptron training rule). `prediction` is
        // accepted for interface uniformity; the recomputed sum is exact in
        // trace-driven simulation.
        let _ = prediction;
        if mispredicted || sum.abs() <= self.threshold {
            let row = self.row(pc);
            let bits = self.weight_bits;
            let w = &mut self.weights[row];
            Self::saturating_adjust(&mut w[0], taken, bits);
            for i in 0..self.history_len {
                let agrees = self.history.bit(i) == taken;
                Self::saturating_adjust(&mut w[i + 1], agrees, bits);
            }
        }
        self.history.push(taken);
    }

    fn storage_bits(&self) -> u64 {
        self.weights.len() as u64 * (self.history_len as u64 + 1) * u64::from(self.weight_bits)
            + self.history_len as u64
    }

    fn name(&self) -> String {
        format!("perceptron-{}x{}", self.weights.len(), self.history_len)
    }

    fn reset(&mut self) {
        *self = PerceptronPredictor::new(self.weights.len(), self.history_len);
    }

    fn clone_fresh(&self) -> Box<dyn BranchPredictor + Send> {
        let mut fresh = self.clone();
        fresh.reset();
        Box::new(fresh)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(self.spec_digest());
        w.begin_section();
        for row in &self.weights {
            for &weight in row {
                w.write_i16(weight);
            }
        }
        w.end_section();
        w.begin_section();
        write_history(&mut w, &self.history);
        w.end_section();
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes, self.spec_digest())?;
        r.begin_section()?;
        let mut weights = Vec::with_capacity(self.weights.len());
        for _ in 0..self.weights.len() {
            let mut row = Vec::with_capacity(self.history_len + 1);
            for _ in 0..=self.history_len {
                row.push(r.read_i16()?);
            }
            weights.push(row);
        }
        r.end_section()?;
        r.begin_section()?;
        let words = read_history(&mut r, self.history.words().len())?;
        r.end_section()?;
        r.finish()?;
        self.weights = weights;
        self.history.load_words(&words);
        Ok(())
    }

    fn spec_digest(&self) -> u64 {
        fnv1a64(self.spec_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = PerceptronPredictor::new(64, 12);
        for _ in 0..200 {
            let pred = p.predict(0x1234);
            p.update(0x1234, true, &pred);
        }
        let pred = p.predict(0x1234);
        assert!(pred.taken);
        assert!(pred.margin > 0);
    }

    #[test]
    fn learns_history_correlated_branch_bimodal_cannot() {
        // Outcome = outcome of the previous branch (lag-1 correlation).
        let mut p = PerceptronPredictor::new(128, 16);
        let mut last = false;
        let mut wrong_late = 0;
        for i in 0..4000 {
            let taken = last;
            let pred = p.predict(0x4444);
            if i > 2000 && pred.taken != taken {
                wrong_late += 1;
            }
            p.update(0x4444, taken, &pred);
            last = !last; // alternate, so outcome alternates too
        }
        assert!(wrong_late < 100, "wrong_late = {wrong_late}");
    }

    #[test]
    fn margin_grows_with_training() {
        let mut p = PerceptronPredictor::new(64, 8);
        let early = p.predict(0x10).margin;
        for _ in 0..300 {
            let pred = p.predict(0x10);
            p.update(0x10, true, &pred);
        }
        let late = p.predict(0x10).margin;
        assert!(late > early);
    }

    #[test]
    fn threshold_follows_jimenez_rule() {
        let p = PerceptronPredictor::new(16, 31);
        assert_eq!(p.threshold(), (1.93 * 31.0 + 14.0) as i32);
    }

    #[test]
    fn weights_saturate() {
        let mut p = PerceptronPredictor::new(1, 4);
        for _ in 0..10_000 {
            let pred = p.predict(0);
            p.update(0, true, &pred);
        }
        // All weights bounded by the 8-bit range.
        assert!(p.weights[0].iter().all(|&w| (-128..=127).contains(&w)));
    }

    #[test]
    #[should_panic(expected = "rows must be non-zero")]
    fn rejects_zero_rows() {
        PerceptronPredictor::new(0, 8);
    }

    #[test]
    fn storage_accounting_scales_with_rows_and_history() {
        let p = PerceptronPredictor::new(10, 9);
        assert_eq!(p.storage_bits(), 10 * 10 * 8 + 9);
        assert!(p.name().contains("perceptron"));
    }
}
