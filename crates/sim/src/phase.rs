//! SimPoint-style phase sampling: simulate a few representative slices of
//! a long stream and reconstruct whole-trace metrics as weighted sums.
//!
//! Long real-world traces make exhaustive simulation the dominant cost of
//! a campaign. Phase analysis exploits program phase behaviour: a stream
//! is sliced into fixed-size intervals, each interval is summarized by a
//! *branch signature* basis vector (a bucketed histogram of branch pcs,
//! split by outcome), and seeded deterministic k-means groups intervals
//! into phases. A few evenly-spaced members of each phase are simulated
//! (averaging them cuts the variance a single medoid would carry) and the
//! whole-trace [`ConfidenceReport`] is reconstructed by folding each
//! representative in with [`ConfidenceReport::merge_scaled`] `weight`
//! times.
//!
//! ## Checkpointed warming
//!
//! A representative slice must start from the *exact* predictor state the
//! sequential run would have reached at its offset — TAGE keeps learning
//! for hundreds of thousands of branches, so any bounded warmup replay
//! leaves a systematic cold-start bias that the weighted reconstruction
//! multiplies. The sampled runner therefore carries one engine across the
//! representatives in stream order. Gaps between slices are handled one of
//! two ways:
//!
//! - **Replay** (cold): the engine simply consumes the gap's records,
//!   which keeps its state exactly sequential, and — when a [`WarmCache`]
//!   is attached — snapshots the boundary state at each slice start
//!   (entry key `(0, start)`, the same [`crate::warmcache`] encoding
//!   segment sharding uses).
//! - **Restore** (warm): when the cache already holds a slice's boundary
//!   state, the engine state is swapped for the snapshot and the gap is
//!   *skipped*, not simulated.
//!
//! Both paths produce bit-identical slice measurements (restore ≡ replay
//! is the warm-state cache's contract), so a sampled result is a pure
//! function of the stream and the [`SamplingSpec`] regardless of cache
//! state, worker count or kill/resume splits. The first run of a
//! `(geometry, options, trace)` triple pays one sequential pass to build
//! the checkpoints; every later run — other confidence schemes, other
//! scenarios, design-space re-runs — simulates only the representative
//! slices themselves, typically 10–100× fewer branches. Reconstruction
//! error is then pure clustering noise, not warmup bias.
//!
//! The statistical-warmup exclusion (`RunOptions::warmup_branches`)
//! applies at the stream head exactly as in a sequential run; values that
//! extend past the first representative slice are not meaningful under
//! sampling.

use tage::{TageBlueprint, TagePredictor};
use tage_confidence::{AdaptiveSaturationController, ConfidenceReport, TageConfidenceClassifier};
use tage_traces::format::FormatError;
use tage_traces::rng::SplitMix64;
use tage_traces::source::{BranchSource, SamplingSpec, Take};
use tage_traces::BranchRecord;

use crate::engine::{ReportObserver, SimEngine};
use crate::runner::{run_source, AdaptiveObserver, RunOptions, TraceRunResult};
use crate::warmcache::{self, WarmCache, WarmState};

/// Number of pc buckets in a branch signature (per outcome).
const SIGNATURE_BUCKETS: usize = 32;
/// Signature dimensionality: taken and not-taken bucket sets.
const SIGNATURE_DIMS: usize = 3 * SIGNATURE_BUCKETS;
/// Lloyd-iteration cap of the k-means loop.
const MAX_KMEANS_ITERATIONS: usize = 25;
/// Measured members per phase: averaging a few evenly-spaced cluster
/// members cuts the variance a single medoid would carry into the
/// weighted reconstruction.
const REPS_PER_CLUSTER: usize = 8;

/// One simulated slice of a phase plan: the interval it sits at and how
/// many intervals of its cluster it stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Representative {
    /// Index of the represented interval (slice `index * interval ..
    /// index * interval + len`).
    pub interval_index: u64,
    /// Number of intervals this representative stands for (its own
    /// included); the slice's metrics are folded in `weight` times.
    pub weight: u64,
}

/// A deterministic phase-sampling plan for one stream: which intervals to
/// simulate and with what weights. A pure function of the record stream
/// and the [`SamplingSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhasePlan {
    /// Total records in the stream the plan was built from.
    pub total_records: u64,
    /// Records per interval (copied from the spec).
    pub interval: u64,
    /// The representatives, in ascending interval order. The weights sum
    /// to the stream's interval count (full intervals plus the ragged
    /// tail, which always gets its own weight-1 representative so the
    /// reconstruction stays exact at the stream edge).
    pub representatives: Vec<Representative>,
}

impl PhasePlan {
    /// Records inside the measured representative slices — the plan's
    /// irreducible simulation cost once checkpoints are warm.
    pub fn measured_records(&self) -> u64 {
        self.representatives
            .iter()
            .map(|rep| {
                let start = rep.interval_index * self.interval;
                self.interval.min(self.total_records - start)
            })
            .sum()
    }
}

/// Builds the phase plan for a stream by reading it once: per-interval
/// branch signatures, then seeded k-means into at most `spec.k` phases.
///
/// # Errors
///
/// Returns the source's [`FormatError`] if the stream fails mid-read.
pub fn build_plan<S: BranchSource>(
    source: &mut S,
    spec: SamplingSpec,
) -> Result<PhasePlan, FormatError> {
    let interval = spec.interval.max(1);
    let mut signatures: Vec<[f64; SIGNATURE_DIMS]> = Vec::new();
    let mut current = [0u32; SIGNATURE_DIMS];
    let mut last_outcome = [2u8; SIGNATURE_BUCKETS];
    let mut in_interval = 0u64;
    let mut total_records = 0u64;
    let mut batch = [BranchRecord::default(); 1024];
    loop {
        let got = source.next_batch(&mut batch)?;
        if got == 0 {
            break;
        }
        for record in &batch[..got] {
            let bucket = (record.pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 59) as usize;
            let dim = bucket + if record.taken { SIGNATURE_BUCKETS } else { 0 };
            current[dim] += 1;
            let outcome = u8::from(record.taken);
            if last_outcome[bucket] != 2 && last_outcome[bucket] != outcome {
                current[2 * SIGNATURE_BUCKETS + bucket] += 1;
            }
            last_outcome[bucket] = outcome;
            in_interval += 1;
            total_records += 1;
            if in_interval == interval {
                signatures.push(normalize(&current, interval));
                current = [0u32; SIGNATURE_DIMS];
                last_outcome = [2u8; SIGNATURE_BUCKETS];
                in_interval = 0;
            }
        }
    }
    let has_tail = in_interval > 0;
    let full_intervals = signatures.len() as u64;

    let mut representatives = cluster(&signatures, spec);
    if has_tail {
        // The ragged tail is structurally unlike any full interval (it is
        // shorter); giving it its own weight-1 representative keeps the
        // record accounting exact.
        representatives.push(Representative {
            interval_index: full_intervals,
            weight: 1,
        });
    }
    representatives.sort_by_key(|rep| rep.interval_index);
    debug_assert_eq!(
        representatives.iter().map(|r| r.weight).sum::<u64>(),
        full_intervals + u64::from(has_tail),
        "weights must cover every interval exactly once"
    );
    Ok(PhasePlan {
        total_records,
        interval,
        representatives,
    })
}

fn normalize(counts: &[u32; SIGNATURE_DIMS], interval: u64) -> [f64; SIGNATURE_DIMS] {
    let mut out = [0.0f64; SIGNATURE_DIMS];
    for (slot, &count) in out.iter_mut().zip(counts.iter()) {
        *slot = count as f64 / interval as f64;
    }
    out
}

fn squared_distance(a: &[f64; SIGNATURE_DIMS], b: &[f64; SIGNATURE_DIMS]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Seeded deterministic k-means over the interval signatures. Returns one
/// weighted representative per non-empty cluster; with at most `spec.k`
/// intervals every interval represents itself.
fn cluster(signatures: &[[f64; SIGNATURE_DIMS]], spec: SamplingSpec) -> Vec<Representative> {
    let n = signatures.len();
    if n == 0 {
        return Vec::new();
    }
    if n <= spec.k {
        return (0..n as u64)
            .map(|interval_index| Representative {
                interval_index,
                weight: 1,
            })
            .collect();
    }

    // Farthest-point initialization: the seed picks the first center, each
    // further center is the point farthest from its nearest chosen center
    // (lowest index on ties). Duplicated signatures stop the expansion
    // early — extra identical centers would only create empty clusters.
    let mut rng = SplitMix64::new(spec.seed);
    let mut centers: Vec<[f64; SIGNATURE_DIMS]> =
        vec![signatures[(rng.next_u64() % n as u64) as usize]];
    let mut nearest: Vec<f64> = signatures
        .iter()
        .map(|point| squared_distance(point, &centers[0]))
        .collect();
    while centers.len() < spec.k {
        let (farthest, &distance) = nearest
            .iter()
            .enumerate()
            .max_by(|(i, a), (j, b)| a.partial_cmp(b).expect("finite").then(j.cmp(i)))
            .expect("n > 0");
        if distance == 0.0 {
            break;
        }
        centers.push(signatures[farthest]);
        for (slot, point) in nearest.iter_mut().zip(signatures.iter()) {
            *slot = slot.min(squared_distance(
                point,
                centers.last().expect("just pushed"),
            ));
        }
    }

    // Lloyd iterations with fixed-order, lowest-index tie-breaking.
    let mut assignment = vec![0usize; n];
    for _ in 0..MAX_KMEANS_ITERATIONS {
        let mut changed = false;
        for (point_index, point) in signatures.iter().enumerate() {
            let mut best = 0usize;
            let mut best_distance = f64::INFINITY;
            for (center_index, center) in centers.iter().enumerate() {
                let distance = squared_distance(point, center);
                if distance < best_distance {
                    best_distance = distance;
                    best = center_index;
                }
            }
            if assignment[point_index] != best {
                assignment[point_index] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![[0.0f64; SIGNATURE_DIMS]; centers.len()];
        let mut counts = vec![0u64; centers.len()];
        for (point, &center_index) in signatures.iter().zip(assignment.iter()) {
            counts[center_index] += 1;
            for (slot, value) in sums[center_index].iter_mut().zip(point.iter()) {
                *slot += value;
            }
        }
        for ((center, sum), &count) in centers.iter_mut().zip(sums.iter()).zip(counts.iter()) {
            if count > 0 {
                for (slot, &total) in center.iter_mut().zip(sum.iter()) {
                    *slot = total / count as f64;
                }
            }
        }
    }

    // Representatives per cluster: a single medoid is a high-variance
    // estimator of its cluster's mean MPKI, so each cluster fields up to
    // [`REPS_PER_CLUSTER`] members, spread evenly across the cluster in
    // stream order, with the cluster's weight integer-split across them.
    // The split keeps the total weight exactly the interval count, so the
    // reconstruction still covers every interval exactly once.
    let mut representatives = Vec::new();
    for center_index in 0..centers.len() {
        let members: Vec<usize> = (0..n)
            .filter(|&point_index| assignment[point_index] == center_index)
            .collect();
        if members.is_empty() {
            continue;
        }
        let picks = members.len().min(REPS_PER_CLUSTER);
        let weight = members.len() as u64;
        let base = weight / picks as u64;
        let extra = weight % picks as u64;
        for pick in 0..picks {
            // Midpoint-of-stratum positions: (2*pick + 1) * len / (2*picks).
            let member = members[(2 * pick + 1) * members.len() / (2 * picks)];
            representatives.push(Representative {
                interval_index: member as u64,
                weight: base + u64::from((pick as u64) < extra),
            });
        }
    }
    representatives
}

/// The outcome of a phase-sampled run: a reconstructed whole-trace result
/// plus the sampling accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledRunResult {
    /// The reconstructed result. The report, branch and instruction
    /// counters are weighted sums over the representatives — *estimates*
    /// of the sequential run, not raw measurements. Deterministic:
    /// identical whatever the cache state.
    pub result: TraceRunResult,
    /// The plan the run executed. Deterministic.
    pub plan: PhasePlan,
    /// Conditional branches measured inside representative slices
    /// (unweighted). Deterministic: identical whatever the cache state.
    pub measured_branches: u64,
    /// Records replayed to carry the sequential state across gaps in
    /// *this* run. Cache-dependent — near the stream length on a cold
    /// run, zero once every checkpoint restores — so it must stay out of
    /// rendered reports.
    pub replayed_records: u64,
}

impl SampledRunResult {
    /// Records this run actually pushed through the simulation engine:
    /// the measured slices plus the gap replay. Cache-dependent, like
    /// [`SampledRunResult::replayed_records`].
    pub fn simulated_records(&self) -> u64 {
        self.measured_branches + self.replayed_records
    }
}

/// Runs one source phase-sampled: builds the plan, then carries a single
/// engine across the representative slices in stream order, replaying or
/// checkpoint-restoring the gaps (see the module docs), and reconstructs
/// whole-trace metrics as integer-weighted sums.
///
/// `open` must produce a fresh, independent stream of the same records on
/// every call; `warm` pairs a [`WarmCache`] with the source's content
/// digest exactly as in [`crate::segment::run_segmented_source_cached`].
///
/// # Errors
///
/// Returns the first [`FormatError`] from the analysis pass or the
/// simulation pass.
pub fn run_sampled_source<S, F>(
    blueprint: &dyn TageBlueprint,
    options: &RunOptions,
    spec: SamplingSpec,
    warm: Option<(&WarmCache, u64)>,
    open: F,
) -> Result<SampledRunResult, FormatError>
where
    S: BranchSource,
    F: Fn() -> Result<S, FormatError>,
{
    let geometry = blueprint.tage_geometry();
    let mut analysis_source = open()?;
    let plan = build_plan(&mut analysis_source, spec)?;
    let trace_name = analysis_source.name().to_string();
    drop(analysis_source);

    let state_digest = warm.map(|_| warmcache::state_digest(&geometry, options));

    let mut report = ConfidenceReport::new();
    let mut conditional_branches = 0u64;
    let mut instructions = 0u64;
    let mut measured_branches = 0u64;
    let mut replayed_records = 0u64;

    let mut source = open()?;
    let mut position = 0u64;
    let mut predictor = TagePredictor::new(&geometry);
    let classifier = TageConfidenceClassifier::with_window(&geometry, options.bim_miss_window);
    let mut adaptive = options.adaptive_target_mkp.map(|target| AdaptiveObserver {
        controller: AdaptiveSaturationController::with_parameters(target, 16 * 1024),
    });
    if let Some(observer) = adaptive.as_ref() {
        predictor.set_automaton(observer.controller.automaton());
    }
    let mut engine =
        SimEngine::new(&mut predictor, classifier).with_warmup(options.warmup_branches);

    for rep in &plan.representatives {
        let start = rep.interval_index * plan.interval;
        let end = (start + plan.interval).min(plan.total_records);

        // Gap ahead of this slice: restore its boundary checkpoint when the
        // cache holds one, replay (and store the checkpoint) otherwise.
        // Both leave the engine in the exact sequential state at `start`.
        if start > position {
            let mut restored = false;
            if let (Some((cache, source_digest)), Some(digest)) = (warm, state_digest) {
                let key = warmcache::entry_key(digest, source_digest, 0, start);
                if let Some(state) = cache
                    .load(key)
                    .and_then(|bytes| warmcache::decode_warm_state(&bytes, digest).ok())
                {
                    // Restore into a scratch predictor first: a torn or
                    // stale entry must not corrupt the carried state the
                    // replay fallback depends on.
                    let mut scratch = TagePredictor::new(&geometry);
                    let adaptive_matches = adaptive.is_none() == state.adaptive.is_none();
                    if adaptive_matches && scratch.restore(&state.predictor).is_ok() {
                        if let (Some(observer), Some(dynamic)) = (adaptive.as_mut(), state.adaptive)
                        {
                            observer.controller.restore_dynamic_state(dynamic);
                        }
                        let (carried, mut classifier) = engine.into_parts();
                        std::mem::swap(carried, &mut scratch);
                        classifier.set_window_remaining(state.window_remaining);
                        engine = SimEngine::new(carried, classifier);
                        source.skip_records(start - position)?;
                        cache.note_hit();
                        restored = true;
                    }
                }
                if !restored {
                    cache.note_miss();
                }
            }
            if !restored {
                engine.run_source(
                    &mut Take::new(&mut source, start - position),
                    &mut adaptive.as_mut(),
                )?;
                replayed_records += start - position;
                if let (Some((cache, source_digest)), Some(digest)) = (warm, state_digest) {
                    let key = warmcache::entry_key(digest, source_digest, 0, start);
                    let (carried, classifier) = engine.into_parts();
                    let state = WarmState {
                        predictor: carried.snapshot(),
                        window_remaining: classifier.window_remaining(),
                        adaptive: adaptive
                            .as_ref()
                            .map(|observer| observer.controller.dynamic_state()),
                    };
                    // Best effort: an unwritable cache degrades to replays.
                    let _ = cache.store(key, &warmcache::encode_warm_state(digest, &state));
                    engine = SimEngine::new(carried, classifier);
                }
            }
        }

        // Measure the representative slice.
        let mut slice = ReportObserver::default();
        let summary = engine.run_source(
            &mut Take::new(&mut source, end - start),
            &mut (&mut slice, adaptive.as_mut()),
        )?;
        position = end;
        report.merge_scaled(&slice.report, rep.weight);
        conditional_branches += summary.measured_branches * rep.weight;
        instructions += summary.measured_instructions * rep.weight;
        measured_branches += summary.measured_branches;
    }
    drop(engine);

    Ok(SampledRunResult {
        result: TraceRunResult {
            trace_name,
            config_name: geometry.name(),
            report,
            conditional_branches,
            instructions,
            final_saturation_probability: predictor.geometry().automaton.saturation_probability(),
        },
        plan,
        measured_branches,
        replayed_records,
    })
}

/// An exact-vs-sampled comparison: the error bound report behind the
/// `sampling-smoke` CI gate and the pinned accuracy test.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingErrorReport {
    /// MPKI of the exact (sequential, unsampled) run.
    pub exact_mpki: f64,
    /// MPKI reconstructed from the sampled run.
    pub sampled_mpki: f64,
    /// `|sampled - exact| / exact` (0 when the exact MPKI is 0).
    pub relative_error: f64,
    /// Conditional branches the exact run simulated.
    pub exact_branches: u64,
    /// Records the sampled run actually simulated (measured slices plus
    /// replayed gaps — so cache-dependent; see
    /// [`SampledRunResult::simulated_records`]).
    pub sampled_branches: u64,
}

impl SamplingErrorReport {
    /// How many times fewer branches the sampled run simulated.
    pub fn speedup(&self) -> f64 {
        if self.sampled_branches == 0 {
            0.0
        } else {
            self.exact_branches as f64 / self.sampled_branches as f64
        }
    }
}

/// Runs a source both exactly and phase-sampled and reports the
/// reconstruction error alongside the branch-count saving. With a warm
/// [`WarmCache`] the sampled leg restores checkpoints and the reported
/// speedup reflects the slices-only cost; cold, it reflects the one-time
/// checkpoint-building pass.
///
/// # Errors
///
/// Returns the first [`FormatError`] from either run.
pub fn compare_sampled_vs_exact<S, F>(
    blueprint: &dyn TageBlueprint,
    options: &RunOptions,
    spec: SamplingSpec,
    warm: Option<(&WarmCache, u64)>,
    open: F,
) -> Result<SamplingErrorReport, FormatError>
where
    S: BranchSource,
    F: Fn() -> Result<S, FormatError>,
{
    let mut exact_source = open()?;
    let exact = run_source(blueprint, &mut exact_source, options)?;
    drop(exact_source);
    let sampled = run_sampled_source(blueprint, options, spec, warm, open)?;
    let exact_mpki = exact.report.mpki();
    let sampled_mpki = sampled.result.report.mpki();
    let relative_error = if exact_mpki == 0.0 {
        0.0
    } else {
        (sampled_mpki - exact_mpki).abs() / exact_mpki
    };
    Ok(SamplingErrorReport {
        exact_mpki,
        sampled_mpki,
        relative_error,
        exact_branches: exact.conditional_branches,
        sampled_branches: sampled.simulated_records(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::TageConfig;
    use tage_traces::source::SyntheticSource;
    use tage_traces::suites;

    fn spec() -> tage_traces::TraceSpec {
        suites::cbp1_like().trace("INT-2").unwrap().clone()
    }

    #[test]
    fn plans_are_deterministic_and_cover_every_interval() {
        let sampling = SamplingSpec {
            interval: 500,
            k: 4,
            seed: 1,
        };
        let build = || {
            let mut source = SyntheticSource::from_spec(&spec(), 10_000);
            build_plan(&mut source, sampling).unwrap()
        };
        let plan = build();
        assert_eq!(plan, build(), "same stream, same spec, same plan");
        assert!(plan.total_records >= 10_000);
        assert!(!plan.representatives.is_empty());
        assert!(
            plan.representatives.len() <= sampling.k * REPS_PER_CLUSTER + 1,
            "at most k clusters of REPS_PER_CLUSTER picks, plus the tail"
        );
        let full = plan.total_records / plan.interval;
        let tail = u64::from(!plan.total_records.is_multiple_of(plan.interval));
        assert_eq!(
            plan.representatives.iter().map(|r| r.weight).sum::<u64>(),
            full + tail
        );
        for pair in plan.representatives.windows(2) {
            assert!(pair[0].interval_index < pair[1].interval_index, "sorted");
        }
        assert!(plan.measured_records() < plan.total_records);
    }

    #[test]
    fn tiny_streams_represent_every_interval_exactly() {
        let sampling = SamplingSpec {
            interval: 1_000,
            k: 8,
            seed: 3,
        };
        // 2.5 intervals: 2 full + 1 tail, fewer than k.
        let mut source = SyntheticSource::from_spec(&spec(), 2_500);
        let total = source.skip_records(u64::MAX).unwrap();
        source.reset().unwrap();
        let plan = build_plan(&mut source, sampling).unwrap();
        assert_eq!(plan.total_records, total);
        let expected = plan.total_records.div_ceil(plan.interval);
        assert_eq!(plan.representatives.len() as u64, expected);
        assert!(plan.representatives.iter().all(|r| r.weight == 1));
        // Everything is measured: the "sampled" run degenerates to the
        // sequential run.
        assert_eq!(plan.measured_records(), total);
    }

    #[test]
    fn empty_stream_has_an_empty_plan() {
        let mut source = SyntheticSource::from_spec(&spec(), 0);
        let plan = build_plan(&mut source, SamplingSpec::default_plan()).unwrap();
        assert_eq!(plan.total_records, 0);
        assert!(plan.representatives.is_empty());
        assert_eq!(plan.measured_records(), 0);
    }

    #[test]
    fn sampled_runs_are_deterministic_and_reconstruct_totals() {
        let sampling = SamplingSpec {
            interval: 500,
            k: 4,
            seed: 1,
        };
        let config = TageConfig::small();
        let run = || {
            run_sampled_source(&config, &RunOptions::default(), sampling, None, || {
                Ok(SyntheticSource::from_spec(&spec(), 10_000))
            })
            .unwrap()
        };
        let first = run();
        assert_eq!(first, run(), "bit-identical across runs");
        // The weights partition the intervals, so the weighted conditional
        // count reconstructs the stream's total exactly.
        let total_conditionals = {
            let t = spec().generate(10_000);
            t.iter().filter(|r| r.kind.is_conditional()).count() as u64
        };
        assert_eq!(first.result.conditional_branches, total_conditionals);
        assert_eq!(first.result.report.total().predictions, total_conditionals);
        assert!(first.measured_branches < total_conditionals);
        assert!(first.replayed_records < first.plan.total_records);
    }

    #[test]
    fn different_seeds_may_pick_different_representatives_but_stay_valid() {
        let config = TageConfig::small();
        for seed in [1, 2, 99] {
            let sampling = SamplingSpec {
                interval: 400,
                k: 3,
                seed,
            };
            let out = run_sampled_source(&config, &RunOptions::default(), sampling, None, || {
                Ok(SyntheticSource::from_spec(&spec(), 6_000))
            })
            .unwrap();
            let full = out.plan.total_records / out.plan.interval;
            let tail = u64::from(!out.plan.total_records.is_multiple_of(out.plan.interval));
            assert_eq!(
                out.plan
                    .representatives
                    .iter()
                    .map(|r| r.weight)
                    .sum::<u64>(),
                full + tail,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn pinned_reconstruction_error_and_speedup() {
        // The acceptance gate of the sampling layer: the weighted
        // reconstruction lands within 5% of the exact MPKI, and once
        // checkpoints are warm a re-run simulates at least 5x fewer
        // branches. The cold leg builds the checkpoints (one sequential
        // pass — no worse than the exact run it replaces).
        let dir = std::env::temp_dir().join(format!("tage-phase-pinned-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sampling = SamplingSpec {
            interval: 250,
            k: 8,
            seed: 1,
        };
        let config = TageConfig::small();
        let branches = 200_000;
        let source_spec = tage_traces::source::SourceSpec::Synthetic(spec());
        let digest = source_spec.digest(branches);
        let open = || source_spec.open(branches);
        let cache = WarmCache::new(&dir).unwrap();

        let cold = compare_sampled_vs_exact(
            &config,
            &RunOptions::default(),
            sampling,
            Some((&cache, digest)),
            open,
        )
        .unwrap();
        assert!(
            cold.relative_error < 0.05,
            "reconstruction error {:.4} (exact {:.4} MPKI, sampled {:.4} MPKI)",
            cold.relative_error,
            cold.exact_mpki,
            cold.sampled_mpki
        );

        let warmed = run_sampled_source(
            &config,
            &RunOptions::default(),
            sampling,
            Some((&cache, digest)),
            open,
        )
        .unwrap();
        assert_eq!(warmed.result.report.mpki(), cold.sampled_mpki, "byte-equal");
        assert_eq!(warmed.replayed_records, 0, "every checkpoint restored");
        let speedup = cold.exact_branches as f64 / warmed.simulated_records() as f64;
        assert!(
            speedup >= 5.0,
            "speedup {speedup:.2}x (exact {} branches, sampled {})",
            cold.exact_branches,
            warmed.simulated_records()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_and_warm_runs_are_byte_identical() {
        let dir =
            std::env::temp_dir().join(format!("tage-phase-warmcache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sampling = SamplingSpec {
            interval: 500,
            k: 4,
            seed: 1,
        };
        let config = TageConfig::small();
        let source_spec = tage_traces::source::SourceSpec::Synthetic(spec());
        let digest = source_spec.digest(8_000);
        let open = || source_spec.open(8_000);
        let uncached =
            run_sampled_source(&config, &RunOptions::default(), sampling, None, open).unwrap();
        let cache = WarmCache::new(&dir).unwrap();
        let cold = run_sampled_source(
            &config,
            &RunOptions::default(),
            sampling,
            Some((&cache, digest)),
            open,
        )
        .unwrap();
        assert_eq!(cold, uncached, "first cached run replays, like uncached");
        assert!(cache.misses() > 0);
        let warm = run_sampled_source(
            &config,
            &RunOptions::default(),
            sampling,
            Some((&cache, digest)),
            open,
        )
        .unwrap();
        assert_eq!(warm.result, uncached.result, "restore ≡ replay");
        assert_eq!(warm.plan, uncached.plan);
        assert_eq!(warm.measured_branches, uncached.measured_branches);
        assert!(cache.hits() > 0, "checkpoints should restore");
        assert!(
            warm.replayed_records < uncached.replayed_records,
            "restores replace replays"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
