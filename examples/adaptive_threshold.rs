//! The adaptive saturation probability of Section 6.2: the controller keeps
//! the high-confidence misprediction rate under a target while maximising
//! the class's coverage, adjusting the probability between 1/1024 and 1.
//!
//! Run with: `cargo run --release --example adaptive_threshold`

use tage_confidence_suite::confidence::ConfidenceLevel;
use tage_confidence_suite::sim::runner::{run_trace, RunOptions};
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig};
use tage_confidence_suite::traces::suites;

fn main() {
    let suite = suites::cbp1_like();
    let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());

    println!(
        "{:<10} {:<10} {:>11} {:>14} {:>12}",
        "trace", "mode", "high Pcov", "high MKP", "final p"
    );
    for name in ["FP-1", "INT-1", "MM-5", "SERV-2"] {
        let trace = suite.trace(name).expect("trace exists").generate(300_000);
        for (mode, options) in [
            ("fixed", RunOptions::default()),
            ("adaptive", RunOptions::adaptive()),
        ] {
            let result = run_trace(&config, &trace, &options);
            println!(
                "{:<10} {:<10} {:>11.3} {:>14.1} {:>12.5}",
                name,
                mode,
                result.report.level_pcov(ConfidenceLevel::High),
                result.report.level_mprate_mkp(ConfidenceLevel::High),
                result.final_saturation_probability,
            );
        }
    }
    println!();
    println!(
        "On predictable traces the controller relaxes the probability (growing the high class);"
    );
    println!("on hard traces it tightens it to keep the high-confidence misprediction rate near the 10 MKP target.");
}
