//! Snapshot parity suite — the pin for the predictor-state snapshot layer.
//!
//! Three contracts, each driven over deterministic pseudo-random cases in
//! the `tests/properties.rs` idiom (no proptest; every failing case is
//! replayable from the printed seed):
//!
//! 1. **Split parity**: for every predictor implementation (SoA TAGE,
//!    reference nested-Vec TAGE, gshare, perceptron, GEHL, bimodal, and the
//!    boxed baseline family), snapshot → restore → continue is bit-identical
//!    to straight-line simulation at arbitrary split points — branch 0,
//!    mid-stream, last branch — whether the restore target is a fresh core
//!    or a dirtied one, and multilane [`LaneGroup`] lanes restored from
//!    scalar snapshots stay parity-clean.
//! 2. **Corruption robustness**: truncated bytes, a flipped version byte, a
//!    wrong predictor-spec digest and a corrupted payload each fail with the
//!    precise byte-offset-carrying [`SnapshotError`] — no panics, and the
//!    failed restore leaves the target's state untouched (all-or-nothing).
//! 3. **Op-interleaving fuzz**: random interleavings of {run N branches,
//!    snapshot, restore, reset} never diverge from a shadow core that
//!    replays the surviving operation log from cold.

use tage_confidence_suite::predictors::spec::BaselinePredictorSpec;
use tage_confidence_suite::predictors::{
    BimodalPredictor, BranchPredictor, GehlPredictor, GsharePredictor, MarginPredictor,
    PerceptronPredictor, PredictionOutcome, PredictorCore,
};
use tage_confidence_suite::tage::{
    CounterAutomaton, LaneGroup, ReferenceTagePredictor, TageConfig, TageGeometry, TagePredictor,
};
use tage_confidence_suite::traces::snapshot::SnapshotError;
use tage_confidence_suite::traces::SplitMix64;

/// Number of pseudo-random cases per property. Each case exercises every
/// predictor implementation at several split points, so fewer cases than
/// `tests/properties.rs` keep the suite fast while still sweeping a wide
/// configuration space.
const CASES: u64 = 10;

/// Runs `body` over `CASES` independent pseudo-random generators.
fn for_each_case(property: &str, mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let seed = 0x5eed_7000 + case * 0x9e37;
        let mut rng = SplitMix64::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property `{property}` failed for seed {seed:#x}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// A branch stream over a small PC alphabet with per-PC bias plus noise, so
/// predictors actually train (and the TAGE allocator and probabilistic
/// automaton both fire) instead of seeing white noise.
/// A branch stream: `(pc, taken)` per conditional branch.
type Stream = Vec<(u64, bool)>;

fn arbitrary_stream(rng: &mut SplitMix64, len: u64) -> Stream {
    (0..len)
        .map(|_| {
            let pc = 0x4000 + rng.next_below(24) * 8;
            let bias = !(pc >> 3).is_multiple_of(3);
            let taken = if rng.chance(0.2) { !bias } else { bias };
            (pc, taken)
        })
        .collect()
}

/// Feeds `stream` through the core, returning the predicted direction of
/// every branch.
fn drive<P: PredictorCore>(core: &mut P, stream: &[(u64, bool)]) -> Vec<bool> {
    stream
        .iter()
        .map(|&(pc, taken)| {
            let lookup = core.lookup(pc);
            let predicted = lookup.predicted_taken();
            core.train(pc, taken, &lookup);
            predicted
        })
        .collect()
}

/// The split-parity contract for one core implementation at one split
/// point: a core restored from the split snapshot — whether fresh or
/// dirtied by an unrelated stream first — predicts the tail identically to
/// the straight-line core and lands on the identical full state.
fn check_split_parity<P: PredictorCore>(
    label: &str,
    make: &dyn Fn() -> P,
    stream: &[(u64, bool)],
    dirt: &[(u64, bool)],
    split: usize,
) {
    let mut straight = make();
    drive(&mut straight, &stream[..split]);
    let snapshot = straight.snapshot();
    let expected_tail = drive(&mut straight, &stream[split..]);
    let expected_final = straight.snapshot();

    // (a) restore into a fresh core.
    let mut fresh = make();
    fresh
        .restore(&snapshot)
        .unwrap_or_else(|error| panic!("{label}: restore into fresh core: {error}"));
    assert_eq!(
        drive(&mut fresh, &stream[split..]),
        expected_tail,
        "{label}: tail predictions after restore into fresh core, split {split}"
    );
    assert_eq!(
        fresh.snapshot(),
        expected_final,
        "{label}: final state after restore into fresh core, split {split}"
    );

    // (b) restore into a dirtied core: restoring must fully overwrite
    // whatever the target had accumulated.
    let mut dirty = make();
    drive(&mut dirty, dirt);
    dirty
        .restore(&snapshot)
        .unwrap_or_else(|error| panic!("{label}: restore into dirtied core: {error}"));
    assert_eq!(
        drive(&mut dirty, &stream[split..]),
        expected_tail,
        "{label}: tail predictions after restore into dirtied core, split {split}"
    );
    assert_eq!(
        dirty.snapshot(),
        expected_final,
        "{label}: final state after restore into dirtied core, split {split}"
    );
}

/// Split points covering the edges the streaming engine produces: branch 0
/// (cold snapshot), branch 1, a random mid-stream point (mid-chunk for any
/// chunking), the last branch, and one past it (snapshot of the finished
/// run).
fn split_points(rng: &mut SplitMix64, len: usize) -> [usize; 5] {
    [
        0,
        1,
        1 + rng.next_below(len as u64 - 2) as usize,
        len - 1,
        len,
    ]
}

#[test]
fn snapshot_restore_continue_is_bit_identical_for_every_core() {
    for_each_case("snapshot_split_parity", |rng| {
        let stream = arbitrary_stream(rng, 260);
        let dirt = arbitrary_stream(rng, 90);

        // Randomized configurations, one per implementation per case.
        let tage_config = TageConfig::small()
            .with_rng_seed(rng.next_u64())
            .with_automaton(CounterAutomaton::probabilistic(rng.next_below(11) as u32));
        let gshare_bits = (
            6 + rng.next_below(7) as u32,
            4 + rng.next_below(12) as usize,
        );
        let perceptron_dims = (
            16 << rng.next_below(3) as usize,
            8 + rng.next_below(17) as usize,
        );
        let gehl_dims = (
            3 + rng.next_below(3) as usize,
            6 + rng.next_below(5) as u32,
            24 + rng.next_below(40) as usize,
        );
        let bimodal_bits = 4 + rng.next_below(9) as u32;

        for split in split_points(rng, stream.len()) {
            check_split_parity(
                "tage-soa",
                &|| TagePredictor::new(tage_config.clone()),
                &stream,
                &dirt,
                split,
            );
            check_split_parity(
                "tage-reference",
                &|| ReferenceTagePredictor::new(tage_config.clone()),
                &stream,
                &dirt,
                split,
            );
            check_split_parity(
                "gshare",
                &|| MarginPredictor(GsharePredictor::new(gshare_bits.0, gshare_bits.1)),
                &stream,
                &dirt,
                split,
            );
            check_split_parity(
                "perceptron",
                &|| {
                    MarginPredictor(PerceptronPredictor::new(
                        perceptron_dims.0,
                        perceptron_dims.1,
                    ))
                },
                &stream,
                &dirt,
                split,
            );
            check_split_parity(
                "gehl",
                &|| MarginPredictor(GehlPredictor::new(gehl_dims.0, gehl_dims.1, 2, gehl_dims.2)),
                &stream,
                &dirt,
                split,
            );
            check_split_parity(
                "bimodal",
                &|| MarginPredictor(BimodalPredictor::new(bimodal_bits)),
                &stream,
                &dirt,
                split,
            );
        }

        // The boxed baseline family: snapshot/restore forwarded through
        // `Box<dyn BranchPredictor>` — the heterogeneous-fleet path the
        // suite runner and campaign cells use.
        let split = split_points(rng, stream.len())[2];
        for spec in BaselinePredictorSpec::ALL {
            check_split_parity(
                spec.token(),
                &|| MarginPredictor(spec.build()),
                &stream,
                &dirt,
                split,
            );
        }
    });
}

#[test]
fn snapshots_restored_via_clone_fresh_match_direct_construction() {
    // `BranchPredictor::clone_fresh` is the fleet duplication story; a
    // snapshot restored into a clone must equal one restored into a core
    // built directly from the configuration.
    for_each_case("snapshot_clone_fresh", |rng| {
        let stream = arbitrary_stream(rng, 150);
        let mut trained = TagePredictor::new(TageConfig::small().with_rng_seed(rng.next_u64()));
        drive(&mut trained, &stream);
        let snapshot = BranchPredictor::snapshot(&trained);

        let mut cloned = trained.clone_fresh();
        cloned.restore(&snapshot).expect("restore into clone_fresh");
        assert_eq!(cloned.snapshot(), snapshot);

        let mut direct = TagePredictor::new(trained.geometry().clone());
        TagePredictor::restore(&mut direct, &snapshot).expect("restore into direct");
        assert_eq!(TagePredictor::snapshot(&direct), cloned.snapshot());
    });
}

#[test]
fn multilane_lanes_restored_from_scalar_snapshots_stay_parity_clean() {
    for_each_case("snapshot_multilane_parity", |rng| {
        const LANES: usize = 4;
        let config = TageConfig::small()
            .with_rng_seed(rng.next_u64())
            .with_automaton(CounterAutomaton::probabilistic(rng.next_below(11) as u32));

        // Warm K scalar predictors on distinct streams and snapshot each.
        let mut scalars: Vec<TagePredictor> = (0..LANES)
            .map(|_| TagePredictor::new(config.clone()))
            .collect();
        for scalar in &mut scalars {
            let len = 80 + rng.next_below(120);
            let warmup = arbitrary_stream(rng, len);
            drive(scalar, &warmup);
        }
        let snapshots: Vec<Vec<u8>> = scalars.iter().map(TagePredictor::snapshot).collect();

        // Restore each snapshot into a lane of a lockstep group.
        let mut group = LaneGroup::new(config, LANES);
        for (k, snapshot) in snapshots.iter().enumerate() {
            group.arm(k);
            group.restore_lane(k, snapshot).expect("lane restore");
        }

        // Lockstep continuation must match the scalar twins bit for bit.
        let mut out = Vec::new();
        for _ in 0..100 {
            let pcs: Vec<u64> = (0..LANES)
                .map(|_| 0x4000 + rng.next_below(24) * 8)
                .collect();
            let takens: Vec<bool> = (0..LANES).map(|_| rng.chance(0.6)).collect();
            group.predict(&pcs, &mut out);
            for k in 0..LANES {
                let prediction = scalars[k].predict(pcs[k]);
                assert_eq!(out[k], prediction, "lane {k} prediction");
                scalars[k].update(pcs[k], takens[k], &prediction);
            }
            group.train(&takens, &out);
        }
        for (k, scalar) in scalars.iter().enumerate() {
            group.store_lane(k);
            assert_eq!(
                group.predictor(k).snapshot(),
                scalar.snapshot(),
                "lane {k} full state"
            );
        }
    });
}

#[test]
fn corrupted_snapshots_fail_with_byte_offsets_and_leave_state_untouched() {
    for_each_case("snapshot_corruption", |rng| {
        let config = TageConfig::small().with_rng_seed(rng.next_u64());
        let mut source = TagePredictor::new(config.clone());
        drive(&mut source, &arbitrary_stream(rng, 150));
        let snapshot = TagePredictor::snapshot(&source);

        // The restore target carries its own (different) trained state; a
        // failed restore must leave it bit-for-bit untouched.
        let mut target = TagePredictor::new(config.clone());
        drive(&mut target, &arbitrary_stream(rng, 60));
        let before = TagePredictor::snapshot(&target);

        // Truncation, anywhere: short buffers report Truncated at the read
        // offset, longer cuts surface as a checksum mismatch at the (moved)
        // checksum position. Never a panic, never a partial restore.
        for cut in [
            0,
            3,
            snapshot.len() - 1,
            rng.next_below(snapshot.len() as u64) as usize,
        ] {
            let error = TagePredictor::restore(&mut target, &snapshot[..cut]).unwrap_err();
            match error {
                SnapshotError::Truncated { offset } => assert!(offset <= cut, "cut {cut}"),
                SnapshotError::BadChecksum { offset, .. } => {
                    assert_eq!(offset, cut - 8, "cut {cut}")
                }
                other => panic!("cut {cut}: unexpected error {other}"),
            }
            assert_eq!(TagePredictor::snapshot(&target), before, "cut {cut}");
        }

        // A flipped version byte is rejected as an unsupported version.
        let mut flipped = snapshot.clone();
        flipped[4] ^= 0xFF;
        match TagePredictor::restore(&mut target, &flipped).unwrap_err() {
            SnapshotError::UnsupportedVersion(version) => assert_ne!(version, 1),
            other => panic!("unexpected error {other}"),
        }
        assert_eq!(TagePredictor::snapshot(&target), before);

        // A snapshot from a different predictor specification is rejected
        // by digest, with the digest's byte offset: different TAGE
        // configuration, and the reference implementation's snapshot (the
        // two implementations are deliberately not interchangeable).
        let medium = TagePredictor::new(TageConfig::medium());
        for foreign in [
            TagePredictor::snapshot(&medium),
            ReferenceTagePredictor::new(config.clone()).snapshot(),
        ] {
            match TagePredictor::restore(&mut target, &foreign).unwrap_err() {
                SnapshotError::SpecMismatch {
                    offset,
                    expected,
                    found,
                } => {
                    assert_eq!(offset, 8);
                    assert_ne!(expected, found);
                }
                other => panic!("unexpected error {other}"),
            }
            assert_eq!(TagePredictor::snapshot(&target), before);
        }

        // A corrupted payload byte fails the trailing checksum, reported at
        // the checksum's position.
        let mut corrupt = snapshot.clone();
        let victim = 16 + rng.next_below((corrupt.len() - 24) as u64) as usize;
        corrupt[victim] ^= 0x55;
        match TagePredictor::restore(&mut target, &corrupt).unwrap_err() {
            SnapshotError::BadChecksum {
                offset,
                expected,
                found,
            } => {
                assert_eq!(offset, corrupt.len() - 8);
                assert_ne!(expected, found);
            }
            // Flipping a byte inside the version or digest fields surfaces
            // as those (earlier) validations instead.
            SnapshotError::SpecMismatch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("victim {victim}: unexpected error {other}"),
        }
        assert_eq!(TagePredictor::snapshot(&target), before);

        // Pure garbage never panics.
        let garbage: Vec<u8> = (0..rng.next_below(200))
            .map(|_| rng.next_u64() as u8)
            .collect();
        assert!(TagePredictor::restore(&mut target, &garbage).is_err());
        assert_eq!(TagePredictor::snapshot(&target), before);

        // The same all-or-nothing contract holds for a baseline core.
        let mut gshare = MarginPredictor(GsharePredictor::new(10, 12));
        drive(&mut gshare, &arbitrary_stream(rng, 60));
        let gshare_before = gshare.snapshot();
        let other_spec = MarginPredictor(GsharePredictor::new(11, 12)).snapshot();
        match gshare.restore(&other_spec).unwrap_err() {
            SnapshotError::SpecMismatch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("unexpected error {other}"),
        }
        assert!(gshare.restore(&snapshot).is_err(), "TAGE bytes into gshare");
        assert_eq!(gshare.snapshot(), gshare_before);
    });
}

/// One fuzzed core: applies a random interleaving of {run, snapshot,
/// restore, reset} while maintaining the operation log a correct core would
/// have survived, then checks the core's full state equals a shadow core
/// replaying that log from cold.
fn fuzz_core<P: PredictorCore>(label: &str, make: &dyn Fn() -> P, rng: &mut SplitMix64) {
    let mut core = make();
    let mut applied: Vec<(u64, bool)> = Vec::new();
    let mut saved: Option<(Vec<u8>, Stream)> = None;
    for _ in 0..24 {
        match rng.next_below(8) {
            0..=4 => {
                let len = 1 + rng.next_below(60);
                let burst = arbitrary_stream(rng, len);
                drive(&mut core, &burst);
                applied.extend_from_slice(&burst);
            }
            5 => saved = Some((core.snapshot(), applied.clone())),
            6 => {
                if let Some((bytes, log)) = &saved {
                    core.restore(bytes)
                        .unwrap_or_else(|error| panic!("{label}: fuzz restore: {error}"));
                    applied = log.clone();
                }
            }
            _ => {
                core.reset();
                applied.clear();
            }
        }
    }
    let mut shadow = make();
    drive(&mut shadow, &applied);
    assert_eq!(
        core.snapshot(),
        shadow.snapshot(),
        "{label}: diverged from the replayed shadow after {} surviving ops",
        applied.len()
    );
}

#[test]
fn random_snapshot_op_interleavings_never_diverge_from_a_shadow_core() {
    for_each_case("snapshot_fuzz", |rng| {
        let config = TageConfig::small()
            .with_rng_seed(rng.next_u64())
            .with_automaton(CounterAutomaton::probabilistic(rng.next_below(11) as u32));
        fuzz_core("tage-soa", &|| TagePredictor::new(config.clone()), rng);
        fuzz_core(
            "tage-reference",
            &|| ReferenceTagePredictor::new(config.clone()),
            rng,
        );
        fuzz_core(
            "gshare",
            &|| MarginPredictor(GsharePredictor::new(10, 12)),
            rng,
        );
        fuzz_core(
            "perceptron",
            &|| MarginPredictor(PerceptronPredictor::new(64, 16)),
            rng,
        );
        fuzz_core(
            "gehl",
            &|| MarginPredictor(GehlPredictor::new(4, 9, 2, 40)),
            rng,
        );
        fuzz_core(
            "bimodal",
            &|| MarginPredictor(BimodalPredictor::new(10)),
            rng,
        );
    });
}

#[test]
fn snapshots_are_keyed_to_the_geometry_not_the_construction_path() {
    // Two predictors built from the *same* geometry — one through the
    // preset constructor, one through a declarative `TageGeometry` —
    // exchange snapshots freely; any geometry difference (here: one bit of
    // tag width) flips the spec digest and is rejected at the digest
    // offset. This is what keeps warm-state caches honest when campaigns
    // mix `tage-16k`-style tokens with `geometry:` files.
    for_each_case("snapshot_geometry_digest", |rng| {
        let config = TageConfig::small().with_rng_seed(rng.next_u64());
        let geometry = TageGeometry::from_config(&config);

        let mut from_config = TagePredictor::new(config.clone());
        drive(&mut from_config, &arbitrary_stream(rng, 120));
        let snapshot = TagePredictor::snapshot(&from_config);

        let mut from_geometry = TagePredictor::new(geometry.clone());
        TagePredictor::restore(&mut from_geometry, &snapshot)
            .expect("same geometry, different construction path");
        assert_eq!(TagePredictor::snapshot(&from_geometry), snapshot);

        let reshaped = TageGeometry::from_config(
            &config
                .to_builder()
                .tag_bits(config.tag_bits + 1)
                .build()
                .expect("valid reshaped config"),
        );
        assert_ne!(reshaped.spec_digest(), geometry.spec_digest());
        let mut other = TagePredictor::new(reshaped);
        let before = TagePredictor::snapshot(&other);
        match TagePredictor::restore(&mut other, &snapshot).unwrap_err() {
            SnapshotError::SpecMismatch {
                offset,
                expected,
                found,
            } => {
                assert_eq!(offset, 8);
                assert_ne!(expected, found);
            }
            other => panic!("unexpected error {other}"),
        }
        assert_eq!(TagePredictor::snapshot(&other), before);
    });
}
