//! Micro-benchmark: throughput of the storage-based baseline confidence
//! estimators (JRS, enhanced JRS, self-confidence) attached to their host
//! predictors.
//!
//! Run with: `cargo bench --bench estimator_comparison`

use tage_bench::harness::bench;
use tage_confidence::estimators::{ConfidenceEstimator, JrsEstimator, SelfConfidenceEstimator};
use tage_predictors::{BranchPredictor, GsharePredictor, PerceptronPredictor};
use tage_traces::{suites, Trace};

fn workload() -> Trace {
    suites::cbp2_like()
        .trace("175.vpr")
        .unwrap()
        .generate(20_000)
}

fn run(
    predictor: &mut dyn BranchPredictor,
    estimator: &mut dyn ConfidenceEstimator,
    trace: &Trace,
) -> u64 {
    let mut high = 0u64;
    for record in trace.iter().filter(|r| r.kind.is_conditional()) {
        let pred = predictor.predict(record.pc);
        if estimator.estimate(record.pc, &pred) == tage_confidence::ConfidenceLevel::High {
            high += 1;
        }
        estimator.update(record.pc, &pred, record.taken);
        predictor.update(record.pc, record.taken, &pred);
    }
    high
}

fn main() {
    let trace = workload();
    let branches = trace.iter().filter(|r| r.kind.is_conditional()).count() as u64;

    bench("estimator_throughput", "gshare_jrs", branches, || {
        let mut predictor = GsharePredictor::new(14, 14);
        let mut estimator = JrsEstimator::classic(12);
        run(&mut predictor, &mut estimator, &trace)
    });
    bench(
        "estimator_throughput",
        "gshare_enhanced_jrs",
        branches,
        || {
            let mut predictor = GsharePredictor::new(14, 14);
            let mut estimator = JrsEstimator::enhanced(12);
            run(&mut predictor, &mut estimator, &trace)
        },
    );
    bench(
        "estimator_throughput",
        "perceptron_self_confidence",
        branches,
        || {
            let mut predictor = PerceptronPredictor::new(512, 32);
            let mut estimator = SelfConfidenceEstimator::new(60);
            run(&mut predictor, &mut estimator, &trace)
        },
    );
}
