//! Smith's PC-indexed 2-bit counter (bimodal) predictor.

use tage_traces::snapshot::{fnv1a64, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::counter::SignedCounter;
use crate::predictor::{BranchPredictor, Prediction};

/// A stand-alone bimodal predictor: a table of 2-bit counters indexed by the
/// branch PC.
///
/// This is both the oldest baseline in the confidence-estimation literature
/// (Smith already observed that saturated counters are more trustworthy than
/// weak ones) and the base component of the TAGE predictor.
///
/// # Example
///
/// ```
/// use tage_predictors::{BimodalPredictor, BranchPredictor};
///
/// let mut p = BimodalPredictor::new(12);
/// // Train a strongly-taken branch.
/// for _ in 0..4 {
///     let pred = p.predict(0x1000);
///     p.update(0x1000, true, &pred);
/// }
/// assert!(p.predict(0x1000).taken);
/// ```
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<SignedCounter>,
    index_bits: u32,
    counter_bits: u8,
}

impl BimodalPredictor {
    /// Creates a bimodal predictor with `2^index_bits` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is zero or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        Self::with_counter_bits(index_bits, 2)
    }

    /// Creates a bimodal predictor with counters of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is zero or greater than 28, or if the counter
    /// width is invalid.
    pub fn with_counter_bits(index_bits: u32, counter_bits: u8) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "index_bits must be in 1..=28"
        );
        BimodalPredictor {
            table: vec![SignedCounter::new(counter_bits); 1 << index_bits],
            index_bits,
            counter_bits,
        }
    }

    /// Creates a bimodal predictor from its declarative spec.
    ///
    /// # Panics
    ///
    /// Panics when the spec violates the constructor's parameter ranges.
    pub fn from_spec(spec: &crate::spec::BimodalSpec) -> Self {
        Self::with_counter_bits(spec.index_bits, spec.counter_bits)
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    fn index(&self, pc: u64) -> usize {
        // Drop the low bits that are constant for aligned instructions.
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize
    }

    /// Reads the counter associated with `pc` (for observation-based
    /// confidence estimation).
    pub fn counter(&self, pc: u64) -> SignedCounter {
        self.table[self.index(pc)]
    }

    fn spec_string(&self) -> String {
        format!(
            "bimodal|index_bits={}|counter_bits={}",
            self.index_bits, self.counter_bits
        )
    }
}

impl BranchPredictor for BimodalPredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        let ctr = self.table[self.index(pc)];
        // Margin: distance from the weak threshold, i.e. the centered
        // magnitude of the counter.
        Prediction::new(ctr.predict_taken(), i64::from(ctr.centered_magnitude()))
    }

    fn update(&mut self, pc: u64, taken: bool, _prediction: &Prediction) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * u64::from(self.counter_bits)
    }

    fn name(&self) -> String {
        format!("bimodal-{}k", self.table.len() / 1024)
    }

    fn reset(&mut self) {
        *self = BimodalPredictor::with_counter_bits(self.index_bits, self.counter_bits);
    }

    fn clone_fresh(&self) -> Box<dyn BranchPredictor + Send> {
        let mut fresh = self.clone();
        fresh.reset();
        Box::new(fresh)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(self.spec_digest());
        w.begin_section();
        for ctr in &self.table {
            w.write_i8(ctr.value());
        }
        w.end_section();
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes, self.spec_digest())?;
        r.begin_section()?;
        let mut values = Vec::with_capacity(self.table.len());
        for _ in 0..self.table.len() {
            values.push(r.read_i8()?);
        }
        r.end_section()?;
        r.finish()?;
        for (ctr, value) in self.table.iter_mut().zip(values) {
            ctr.set(value);
        }
        Ok(())
    }

    fn spec_digest(&self) -> u64 {
        fnv1a64(self.spec_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_strongly_biased_branch() {
        let mut p = BimodalPredictor::new(10);
        for _ in 0..10 {
            let pred = p.predict(0x4000);
            p.update(0x4000, true, &pred);
        }
        let pred = p.predict(0x4000);
        assert!(pred.taken);
        assert!(pred.margin >= 3, "saturated counter expected");
    }

    #[test]
    fn distinct_pcs_use_distinct_entries() {
        let mut p = BimodalPredictor::new(10);
        for _ in 0..5 {
            let a = p.predict(0x4000);
            p.update(0x4000, true, &a);
            let b = p.predict(0x4004);
            p.update(0x4004, false, &b);
        }
        assert!(p.predict(0x4000).taken);
        assert!(!p.predict(0x4004).taken);
    }

    #[test]
    fn aliasing_occurs_beyond_table_size() {
        let mut p = BimodalPredictor::new(4); // 16 entries
        let a = 0x1000u64;
        let b = a + (16 << 2); // same index
        for _ in 0..5 {
            let pred = p.predict(a);
            p.update(a, true, &pred);
        }
        assert!(
            p.predict(b).taken,
            "aliased branch sees the trained counter"
        );
    }

    #[test]
    fn storage_accounting() {
        let p = BimodalPredictor::new(10);
        assert_eq!(p.storage_bits(), 1024 * 2);
        let p = BimodalPredictor::with_counter_bits(8, 3);
        assert_eq!(p.storage_bits(), 256 * 3);
        assert_eq!(p.entries(), 256);
    }

    #[test]
    #[should_panic(expected = "index_bits must be in 1..=28")]
    fn rejects_zero_index_bits() {
        BimodalPredictor::new(0);
    }

    #[test]
    fn counter_observation_matches_prediction() {
        let mut p = BimodalPredictor::new(8);
        for _ in 0..3 {
            let pred = p.predict(0x2000);
            p.update(0x2000, false, &pred);
        }
        let ctr = p.counter(0x2000);
        assert!(!ctr.predict_taken());
        assert!(ctr.is_saturated());
    }

    #[test]
    fn name_mentions_size() {
        assert!(BimodalPredictor::new(12).name().contains("bimodal"));
    }
}
