//! Daemon counters and the `GET /metrics` document.
//!
//! [`Metrics`] is the live atomic-counter block every service thread bumps;
//! [`MetricsSnapshot`] is one consistent reading of it plus the
//! state-derived gauges (queue depth, open campaigns) the router fills in
//! under the state lock. The rendered document is flat JSON — one
//! numeric field per counter — except `campaign_wall_seconds`, which maps
//! finished campaign ids to their wall time.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::jsonish;

/// Monotonic counters of one `tage-serve` process. Everything is relaxed
/// atomics: `/metrics` is observability, not a synchronization point.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests handled (any method, any status).
    pub requests: AtomicU64,
    /// Campaigns accepted via `POST /campaigns` (idempotent resubmissions
    /// of a known id are not counted again).
    pub campaigns_submitted: AtomicU64,
    /// Campaigns re-opened from the journal directory at startup.
    pub campaigns_rehydrated: AtomicU64,
    /// Campaigns whose every cell is finished.
    pub campaigns_finished: AtomicU64,
    /// Campaigns that died on a cell execution error.
    pub campaigns_failed: AtomicU64,
    /// Cells executed by this process (each unique cell at most once).
    pub cells_computed: AtomicU64,
    /// Cells answered from the content-addressed store instead of executed.
    pub cells_restored: AtomicU64,
    /// Work batches the executor ran through `steal_map`.
    pub batches: AtomicU64,
    /// Cross-worker steals summed over all batches.
    pub steals: AtomicU64,
    /// Microseconds the worker pool spent inside batches.
    pub busy_micros: AtomicU64,
}

impl Metrics {
    /// Adds one to `counter` (relaxed).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads `counter` (relaxed).
    pub fn read(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// One consistent `/metrics` reading: the counters plus the gauges only the
/// service state can provide.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the daemon started.
    pub uptime_seconds: f64,
    /// Worker threads the executor batches across.
    pub workers: usize,
    /// Unique cells queued and not yet handed to a batch.
    pub queue_depth: usize,
    /// Unique cells currently inside a running batch.
    pub cells_in_flight: usize,
    /// Campaigns neither finished nor failed.
    pub campaigns_open: usize,
    /// `(campaign id, wall seconds)` of every finished campaign.
    pub campaign_wall_seconds: Vec<(String, f64)>,
    /// See [`Metrics::requests`].
    pub requests: u64,
    /// See [`Metrics::campaigns_submitted`].
    pub campaigns_submitted: u64,
    /// See [`Metrics::campaigns_rehydrated`].
    pub campaigns_rehydrated: u64,
    /// See [`Metrics::campaigns_finished`].
    pub campaigns_finished: u64,
    /// See [`Metrics::campaigns_failed`].
    pub campaigns_failed: u64,
    /// See [`Metrics::cells_computed`].
    pub cells_computed: u64,
    /// See [`Metrics::cells_restored`].
    pub cells_restored: u64,
    /// Cell-store lookups that found a valid cell.
    pub cache_hits: u64,
    /// Cell-store lookups that found nothing usable.
    pub cache_misses: u64,
    /// Process-wide predictor warm-state cache hits
    /// ([`tage_sim::warmcache::global_counters`]).
    pub warmcache_hits: u64,
    /// Process-wide predictor warm-state cache misses.
    pub warmcache_misses: u64,
    /// See [`Metrics::batches`].
    pub batches: u64,
    /// See [`Metrics::steals`].
    pub steals: u64,
    /// Seconds the worker pool spent inside batches.
    pub busy_seconds: f64,
}

impl MetricsSnapshot {
    /// Fraction of the daemon's lifetime the worker pool was executing a
    /// batch (0 when the daemon just started).
    pub fn worker_utilization(&self) -> f64 {
        if self.uptime_seconds > 0.0 {
            (self.busy_seconds / self.uptime_seconds).min(1.0)
        } else {
            0.0
        }
    }

    /// Renders the `/metrics` document.
    pub fn render_json(&self) -> String {
        let walls: Vec<String> = self
            .campaign_wall_seconds
            .iter()
            .map(|(id, wall)| format!("\"{}\": {wall:.6}", jsonish::escape(id)))
            .collect();
        format!(
            "{{\n \"uptime_seconds\": {:.6},\n \"workers\": {},\n \"queue_depth\": {},\n \"cells_in_flight\": {},\n \"campaigns_open\": {},\n \"requests\": {},\n \"campaigns_submitted\": {},\n \"campaigns_rehydrated\": {},\n \"campaigns_finished\": {},\n \"campaigns_failed\": {},\n \"cells_computed\": {},\n \"cells_restored\": {},\n \"cache_hits\": {},\n \"cache_misses\": {},\n \"warmcache_hits\": {},\n \"warmcache_misses\": {},\n \"batches\": {},\n \"steals\": {},\n \"busy_seconds\": {:.6},\n \"worker_utilization\": {:.6},\n \"campaign_wall_seconds\": {{{}}}\n}}\n",
            self.uptime_seconds,
            self.workers,
            self.queue_depth,
            self.cells_in_flight,
            self.campaigns_open,
            self.requests,
            self.campaigns_submitted,
            self.campaigns_rehydrated,
            self.campaigns_finished,
            self.campaigns_failed,
            self.cells_computed,
            self.cells_restored,
            self.cache_hits,
            self.cache_misses,
            self.warmcache_hits,
            self.warmcache_misses,
            self.batches,
            self.steals,
            self.busy_seconds,
            self.worker_utilization(),
            walls.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_traces::jsonish;

    fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_seconds: 10.0,
            workers: 4,
            queue_depth: 2,
            cells_in_flight: 3,
            campaigns_open: 1,
            campaign_wall_seconds: vec![("abc123".to_string(), 1.5)],
            requests: 7,
            campaigns_submitted: 2,
            campaigns_rehydrated: 1,
            campaigns_finished: 1,
            campaigns_failed: 0,
            cells_computed: 5,
            cells_restored: 4,
            cache_hits: 4,
            cache_misses: 5,
            warmcache_hits: 11,
            warmcache_misses: 3,
            batches: 2,
            steals: 1,
            busy_seconds: 5.0,
        }
    }

    #[test]
    fn snapshot_renders_a_valid_flat_document() {
        let json = snapshot().render_json();
        jsonish::validate_document(&json, jsonish::DEFAULT_MAX_DEPTH).unwrap();
        assert_eq!(jsonish::number_field(&json, "queue_depth"), Some(2.0));
        assert_eq!(jsonish::number_field(&json, "cells_computed"), Some(5.0));
        assert_eq!(
            jsonish::number_field(&json, "worker_utilization"),
            Some(0.5)
        );
        assert!(json.contains("\"abc123\": 1.500000"));
    }

    #[test]
    fn utilization_is_clamped_and_zero_safe() {
        let mut s = snapshot();
        s.busy_seconds = 99.0;
        assert_eq!(s.worker_utilization(), 1.0);
        s.uptime_seconds = 0.0;
        assert_eq!(s.worker_utilization(), 0.0);
    }
}
