//! Section 6: accuracy cost of the modified 3-bit counter automaton.
//!
//! The paper reports an increase of less than 0.02 misp/KI when the
//! probabilistic-saturation automaton replaces the standard one.

use tage_bench::{branches_from_args, print_header};
use tage_sim::experiment::automaton_cost;
use tage_sim::report::{mpki, TextTable};
use tage_traces::suites;

fn main() {
    let branches = branches_from_args();
    print_header(
        "Section 6 — accuracy cost of the modified automaton",
        branches,
    );
    let cbp1 = suites::cbp1_like();
    let cbp2 = suites::cbp2_like();
    let rows = automaton_cost(&[&cbp1, &cbp2], branches);
    let mut table = TextTable::new(vec![
        "config",
        "suite",
        "standard MPKI",
        "modified MPKI",
        "cost (MPKI)",
    ]);
    for row in &rows {
        table.row(vec![
            row.config_name.clone(),
            row.suite_name.clone(),
            mpki(row.standard_mpki),
            mpki(row.modified_mpki),
            format!("{:+.3}", row.cost()),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("Paper: the cost is below 0.02 misp/KI on the real CBP traces.");
}
