//! The `tage-bench --submit` client: submits a grid to a running
//! `tage-serve` daemon, optionally polls it to completion, and fetches the
//! final byte-stable report.
//!
//! The client and daemon must see the same filesystem when the grid uses
//! `trace_dirs` — the request carries directory *paths*, not trace bytes.

use std::time::Duration;

use super::grid::GridRequest;
use super::http::{client_request, host_port_of};
use crate::jsonish;

/// How often [`submit_grid`] polls a running campaign.
pub const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// The outcome of one client submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitResult {
    /// Content-addressed campaign id the daemon assigned (equals
    /// [`GridRequest::id`]).
    pub id: String,
    /// Last observed campaign state (`running` when not waiting).
    pub state: String,
    /// The final report document, when the campaign finished and we waited.
    pub report: Option<String>,
}

/// Submits `request` to the daemon at `base_url` (`http://host:port`).
/// With `wait`, polls until the campaign finishes or fails, then fetches
/// `GET /campaigns/<id>/report`; without it, returns right after the
/// acknowledgement.
///
/// # Errors
///
/// A human-readable string on connection failures, non-2xx responses, or a
/// failed campaign (the daemon's error message is passed through).
pub fn submit_grid(
    base_url: &str,
    request: &GridRequest,
    wait: bool,
) -> Result<SubmitResult, String> {
    let host_port = host_port_of(base_url)?;
    let body = request.to_json();
    let (status, response) = client_request(&host_port, "POST", "/campaigns", Some(&body))?;
    if status != 202 {
        return Err(format!(
            "daemon rejected the grid ({status}): {}",
            jsonish::string_field(&response, "error").unwrap_or(response)
        ));
    }
    let id = jsonish::string_field(&response, "id")
        .ok_or_else(|| format!("acknowledgement carries no id: {response}"))?;
    let mut state = jsonish::string_field(&response, "state").unwrap_or_default();
    if !wait {
        return Ok(SubmitResult {
            id,
            state,
            report: None,
        });
    }
    loop {
        match state.as_str() {
            "finished" => break,
            "failed" => {
                let (_, status_body) =
                    client_request(&host_port, "GET", &format!("/campaigns/{id}"), None)?;
                return Err(format!(
                    "campaign {id} failed: {}",
                    jsonish::string_field(&status_body, "error")
                        .unwrap_or_else(|| "unknown cell error".to_string())
                ));
            }
            _ => std::thread::sleep(POLL_INTERVAL),
        }
        let (status, status_body) =
            client_request(&host_port, "GET", &format!("/campaigns/{id}"), None)?;
        if status != 200 {
            return Err(format!("status poll for {id} returned {status}"));
        }
        state = jsonish::string_field(&status_body, "state")
            .ok_or_else(|| format!("status for {id} carries no state: {status_body}"))?;
    }
    let (status, report) =
        client_request(&host_port, "GET", &format!("/campaigns/{id}/report"), None)?;
    if status != 200 {
        return Err(format!(
            "report fetch for {id} returned {status}: {}",
            jsonish::string_field(&report, "error").unwrap_or(report)
        ));
    }
    Ok(SubmitResult {
        id,
        state,
        report: Some(report),
    })
}
