//! Bit-parity pin for the lane-batched lockstep engine: every result a
//! [`MultilaneEngine`] produces must be identical — report, counters and
//! metadata — to running the same stream alone through the scalar
//! [`run_source`] path, for every lane count, ragged stream lengths and
//! every source kind.

use std::path::PathBuf;

use tage::{CounterAutomaton, TageConfig};
use tage_sim::runner::{run_source, RunOptions, TraceRunResult};
use tage_sim::{MultilaneEngine, SimEngine};
use tage_traces::source::{BinaryFileSource, BranchSource, SliceSource, SyntheticSource};
use tage_traces::suites;
use tage_traces::writer::TraceWriter;
use tage_traces::Trace;

/// Lane counts the tentpole pins: degenerate (1), below / at / above the
/// default (16), and the powers of two between.
const LANE_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Ragged per-stream conditional-branch budgets: more streams than any
/// tested lane count (so lanes re-arm), spread over two orders of magnitude
/// (so lanes retire at very different cycles), including a one-branch stream.
const RAGGED_LENGTHS: [usize; 18] = [
    500, 3_000, 1, 1_200, 77, 2_048, 9, 650, 4_096, 300, 1_500, 33, 700, 2_500, 128, 900, 5, 1_800,
];

/// The paper's probabilistic-saturation automaton exercises the per-lane
/// RNG draws (allocation skip-forward), which a parity bug would desync.
fn config() -> TageConfig {
    TageConfig::small().with_automaton(CounterAutomaton::paper_default())
}

/// Generates the ragged workload: suite traces cycled round-robin, each
/// materialized at its slot's length.
fn ragged_traces() -> Vec<Trace> {
    let suite = suites::cbp1_like();
    let specs = suite.traces();
    RAGGED_LENGTHS
        .iter()
        .enumerate()
        .map(|(i, &len)| specs[i % specs.len()].generate(len))
        .collect()
}

fn assert_results_match(batched: &TraceRunResult, scalar: &TraceRunResult, context: &str) {
    assert_eq!(batched.report, scalar.report, "report diverged: {context}");
    assert_eq!(batched.trace_name, scalar.trace_name, "{context}");
    assert_eq!(batched.config_name, scalar.config_name, "{context}");
    assert_eq!(
        batched.conditional_branches, scalar.conditional_branches,
        "branch count diverged: {context}"
    );
    assert_eq!(
        batched.instructions, scalar.instructions,
        "instruction count diverged: {context}"
    );
    assert_eq!(
        batched.final_saturation_probability, scalar.final_saturation_probability,
        "{context}"
    );
}

/// Runs `make_sources()` through every pinned lane count and checks each
/// stream against a fresh scalar run of the same source.
fn check_parity_across_lane_counts<S, F>(mut make_sources: F, kind: &str)
where
    S: BranchSource,
    F: FnMut() -> Vec<S>,
{
    let config = config();
    let options = RunOptions::default();
    let scalar: Vec<TraceRunResult> = make_sources()
        .iter_mut()
        .map(|source| run_source(&config, source, &options).unwrap())
        .collect();
    for lanes in LANE_COUNTS {
        let mut sources = make_sources();
        let batched =
            SimEngine::run_sources_multilane(&config, &mut sources, &options, lanes).unwrap();
        assert_eq!(batched.len(), scalar.len());
        for (b, s) in batched.iter().zip(&scalar) {
            assert_results_match(b, s, &format!("{kind}, K={lanes}, trace {}", s.trace_name));
        }
    }
}

#[test]
fn slice_sources_match_scalar_for_every_lane_count() {
    let traces = ragged_traces();
    check_parity_across_lane_counts(
        || traces.iter().map(SliceSource::from_trace).collect(),
        "slice",
    );
}

#[test]
fn synthetic_sources_match_scalar_for_every_lane_count() {
    let suite = suites::cbp1_like();
    let specs = suite.traces();
    check_parity_across_lane_counts(
        || {
            RAGGED_LENGTHS
                .iter()
                .enumerate()
                .map(|(i, &len)| SyntheticSource::from_spec(&specs[i % specs.len()], len))
                .collect()
        },
        "synthetic",
    );
}

#[test]
fn file_sources_match_scalar_for_every_lane_count() {
    // Fewer, shorter streams than the in-memory tests: the point here is
    // the chunked-reader refill path, not the ragged scheduling (already
    // covered above).
    let paths: Vec<PathBuf> = ragged_traces()
        .iter()
        .take(6)
        .enumerate()
        .map(|(i, trace)| {
            let path = std::env::temp_dir().join(format!(
                "tage-multilane-parity-{}-{i}.trace",
                std::process::id()
            ));
            std::fs::write(&path, TraceWriter::to_binary_bytes(trace)).unwrap();
            path
        })
        .collect();
    check_parity_across_lane_counts(
        || {
            paths
                .iter()
                .map(|p| BinaryFileSource::open(p).unwrap())
                .collect()
        },
        "file",
    );
    for path in paths {
        std::fs::remove_file(path).unwrap();
    }
}

#[test]
fn single_lane_is_the_scalar_engine() {
    // K = 1 leaves no room for scheduling differences at all: the one lane
    // must walk the pending sources in order and reproduce a sequential
    // scalar sweep exactly, including the re-arm (predictor reset) between
    // streams.
    let config = config();
    let options = RunOptions::default();
    let traces = ragged_traces();
    let mut sources: Vec<SliceSource<'_>> = traces.iter().map(SliceSource::from_trace).collect();
    let batched = SimEngine::run_sources_multilane(&config, &mut sources, &options, 1).unwrap();
    for (trace, batched) in traces.iter().zip(&batched) {
        let mut source = SliceSource::from_trace(trace);
        let scalar = run_source(&config, &mut source, &options).unwrap();
        assert_results_match(
            batched,
            &scalar,
            &format!("K=1, trace {}", scalar.trace_name),
        );
    }
}

#[test]
fn more_lanes_than_sources_is_fine() {
    let config = config();
    let options = RunOptions::default();
    let trace = suites::cbp1_like().trace("INT-1").unwrap().generate(2_000);
    let mut engine = MultilaneEngine::new(config.clone(), &options, 16);
    let mut sources = vec![SliceSource::from_trace(&trace)];
    let mut results = vec![MultilaneEngine::placeholder_result()];
    engine.run_into(&mut sources, &mut results).unwrap();
    let mut source = SliceSource::from_trace(&trace);
    let scalar = run_source(&config, &mut source, &options).unwrap();
    assert_results_match(&results[0], &scalar, "16 lanes, 1 source");
}
