//! Running the storage-based baseline confidence estimators for comparison.
//!
//! The paper's related-work section describes confidence estimators designed
//! for pre-TAGE predictors: the JRS resetting-counter table, its Grunwald
//! enhancement, and the self-confidence of neural predictors. This module
//! runs any [`BranchPredictor`] together with any [`ConfidenceEstimator`]
//! over a trace and reports the binary confidence metrics (SENS, SPEC, PVP,
//! PVN) so the storage-free TAGE scheme can be compared against them.
//!
//! There is no bespoke loop here: the predictor is adapted through
//! [`MarginPredictor`], the estimator through
//! [`tage_confidence::EstimatorScheme`], and the pair runs through the exact
//! same [`SimEngine`] path as the TAGE experiments.

use core::fmt;

use tage_confidence::{BinaryConfusion, ConfidenceEstimator, ConfidenceLevel, EstimatorScheme};
use tage_predictors::{BranchPredictor, MarginPredictor};
use tage_traces::Trace;

use crate::engine::{ReportObserver, SimEngine};

/// The outcome of running a predictor plus a confidence estimator over a
/// trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRunResult {
    /// Name of the trace.
    pub trace_name: String,
    /// Name of the predictor.
    pub predictor_name: String,
    /// Name of the confidence estimator.
    pub estimator_name: String,
    /// Extra storage the estimator uses, in bits.
    pub estimator_storage_bits: u64,
    /// Confusion matrix treating `High` as high confidence and everything
    /// else as low confidence.
    pub confusion: BinaryConfusion,
    /// Number of conditional branches simulated.
    pub conditional_branches: u64,
    /// Number of mispredictions.
    pub mispredictions: u64,
    /// Per-level prediction counts (low, medium, high).
    pub level_predictions: [u64; 3],
    /// Per-level misprediction counts (low, medium, high).
    pub level_mispredictions: [u64; 3],
}

impl BaselineRunResult {
    /// Misprediction rate in mispredictions per kilo-prediction.
    pub fn mkp(&self) -> f64 {
        if self.conditional_branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / self.conditional_branches as f64
        }
    }

    /// Misprediction rate of one confidence level, in MKP.
    pub fn level_mkp(&self, level: ConfidenceLevel) -> f64 {
        let i = level_index(level);
        if self.level_predictions[i] == 0 {
            0.0
        } else {
            self.level_mispredictions[i] as f64 * 1000.0 / self.level_predictions[i] as f64
        }
    }

    /// Prediction coverage of one confidence level.
    pub fn level_pcov(&self, level: ConfidenceLevel) -> f64 {
        if self.conditional_branches == 0 {
            0.0
        } else {
            self.level_predictions[level_index(level)] as f64 / self.conditional_branches as f64
        }
    }
}

fn level_index(level: ConfidenceLevel) -> usize {
    match level {
        ConfidenceLevel::Low => 0,
        ConfidenceLevel::Medium => 1,
        ConfidenceLevel::High => 2,
    }
}

impl fmt::Display for BaselineRunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + {} on {}: {:.1} MKP, {}",
            self.predictor_name,
            self.estimator_name,
            self.trace_name,
            self.mkp(),
            self.confusion
        )
    }
}

/// Runs `predictor` with `estimator` over the conditional branches of
/// `trace` through the generic simulation engine.
pub fn run_baseline(
    predictor: &mut dyn BranchPredictor,
    estimator: &mut dyn ConfidenceEstimator,
    trace: &Trace,
) -> BaselineRunResult {
    let predictor_name = predictor.name();
    let estimator_name = estimator.name();
    let estimator_storage_bits = estimator.storage_bits();

    let mut report = ReportObserver::default();
    let mut engine = SimEngine::new(MarginPredictor(predictor), EstimatorScheme(estimator));
    engine.run(trace, &mut report);
    let report = report.report;

    let level_stats = |level| report.level(level);
    BaselineRunResult {
        trace_name: trace.name().to_string(),
        predictor_name,
        estimator_name,
        estimator_storage_bits,
        confusion: report.binary_confusion(&[ConfidenceLevel::High]),
        conditional_branches: report.total().predictions,
        mispredictions: report.total().mispredictions,
        level_predictions: [
            level_stats(ConfidenceLevel::Low).predictions,
            level_stats(ConfidenceLevel::Medium).predictions,
            level_stats(ConfidenceLevel::High).predictions,
        ],
        level_mispredictions: [
            level_stats(ConfidenceLevel::Low).mispredictions,
            level_stats(ConfidenceLevel::Medium).mispredictions,
            level_stats(ConfidenceLevel::High).mispredictions,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_confidence::estimators::{JrsEstimator, SelfConfidenceEstimator};
    use tage_predictors::{GsharePredictor, PerceptronPredictor};
    use tage_traces::suites;

    fn trace() -> Trace {
        suites::cbp1_like().trace("INT-1").unwrap().generate(20_000)
    }

    #[test]
    fn jrs_on_gshare_flags_most_correct_predictions_as_high_confidence() {
        let trace = trace();
        let mut predictor = GsharePredictor::new(12, 12);
        let mut estimator = JrsEstimator::classic(12);
        let result = run_baseline(&mut predictor, &mut estimator, &trace);
        assert_eq!(result.conditional_branches, 20_000);
        assert!(result.confusion.total() == 20_000);
        // High-confidence predictions must be more reliable than the average.
        assert!(result.confusion.pvp() > 1.0 - result.mkp() / 1000.0);
        // And low-confidence ones less reliable (positive PVN).
        assert!(result.confusion.pvn() > result.mkp() / 1000.0);
        assert!(result.estimator_storage_bits > 0);
    }

    #[test]
    fn self_confidence_on_perceptron_has_positive_pvn() {
        let trace = trace();
        let mut predictor = PerceptronPredictor::new(512, 24);
        let mut estimator = SelfConfidenceEstimator::new(40);
        let result = run_baseline(&mut predictor, &mut estimator, &trace);
        assert!(result.confusion.pvn() > result.mkp() / 1000.0);
        assert_eq!(result.estimator_storage_bits, 0);
        // Per-level accounting is consistent.
        let total: u64 = result.level_predictions.iter().sum();
        assert_eq!(total, result.conditional_branches);
        assert!(result.level_mkp(ConfidenceLevel::Low) >= result.level_mkp(ConfidenceLevel::High));
        assert!(result.level_pcov(ConfidenceLevel::High) > 0.0);
    }

    #[test]
    fn display_mentions_all_names() {
        let trace = suites::cbp1_like().trace("FP-1").unwrap().generate(1_000);
        let mut predictor = GsharePredictor::new(10, 10);
        let mut estimator = JrsEstimator::classic(10);
        let result = run_baseline(&mut predictor, &mut estimator, &trace);
        let s = format!("{result}");
        assert!(s.contains("gshare"));
        assert!(s.contains("jrs"));
        assert!(s.contains("FP-1"));
    }
}
