//! The generic N-stream interleaving core shared by every cycle-interleaved
//! model.
//!
//! The SMT fetch-policy model ([`crate::smt`]) and the N-core
//! shared-predictor interference scenario
//! ([`crate::scenarios::interference`]) both need the same machinery: N
//! streaming [`BranchSource`]s, each staged one conditional branch at a
//! time through a bounded cursor, and a cycle loop that grants each cycle's
//! slot to one stream according to an arbitration policy. This module holds
//! that machinery once — [`StreamLane`] is the per-stream cursor (bounded
//! batch buffer, staged conditional branch, non-branch instruction
//! accounting) and [`interleave`] is the arbitration loop, parameterized
//! over an [`InterleaveDriver`] that owns the model-specific state (engines,
//! in-flight windows, per-core counters).
//!
//! The two-thread SMT model is exactly this core at N = 2 — the refactor is
//! pinned bit-identical to the historical hardcoded implementation by
//! `crate::smt`'s tests.

use tage_traces::format::FormatError;
use tage_traces::source::BranchSource;
use tage_traces::BranchRecord;

/// Records a lane's stream cursor holds in memory at a time.
pub const LANE_BATCH_RECORDS: usize = 1024;

/// One hardware stream of an interleaved model: a streaming source pulled
/// through a bounded batch buffer, with the next conditional branch staged
/// for fetch and the instruction counts of skipped non-conditional records
/// (calls, returns, jumps) accumulated for per-stream MPKI accounting.
#[derive(Debug)]
pub struct StreamLane<S> {
    name: String,
    source: S,
    batch: Vec<BranchRecord>,
    filled: usize,
    cursor: usize,
    staged: Option<BranchRecord>,
    stream_done: bool,
    /// Instructions of non-conditional records consumed while seeking the
    /// staged branch, not yet attributed to an executed branch.
    pending_instructions: u64,
}

impl<S: BranchSource> StreamLane<S> {
    /// Wraps a source with the default [`LANE_BATCH_RECORDS`] cursor.
    pub fn new(source: S) -> Self {
        StreamLane {
            name: source.name().to_string(),
            source,
            batch: vec![BranchRecord::default(); LANE_BATCH_RECORDS],
            filled: 0,
            cursor: 0,
            staged: None,
            stream_done: false,
            pending_instructions: 0,
        }
    }

    /// The stream's name (taken from the source at construction).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pulls records until a conditional branch is staged or the stream
    /// ends. Only conditional branches occupy fetch slots in the
    /// interleaved models; skipped records contribute their instruction
    /// counts to [`StreamLane::take_pending_instructions`].
    pub fn stage(&mut self) -> Result<(), FormatError> {
        while self.staged.is_none() && !self.stream_done {
            if self.cursor == self.filled {
                self.filled = self.source.next_batch(&mut self.batch)?;
                self.cursor = 0;
                if self.filled == 0 {
                    self.stream_done = true;
                    break;
                }
            }
            let record = self.batch[self.cursor];
            self.cursor += 1;
            if record.kind.is_conditional() {
                self.staged = Some(record);
            } else {
                self.pending_instructions += record.instructions();
            }
        }
        Ok(())
    }

    /// Whether the stream has no staged branch and nothing left to pull.
    pub fn exhausted(&self) -> bool {
        self.staged.is_none() && self.stream_done
    }

    /// Takes the staged conditional branch, leaving the lane empty until the
    /// next [`StreamLane::stage`] call.
    pub fn take_staged(&mut self) -> Option<BranchRecord> {
        self.staged.take()
    }

    /// Drains the instruction count of the non-conditional records consumed
    /// since the last drain (they precede the currently staged branch in
    /// stream order).
    pub fn take_pending_instructions(&mut self) -> u64 {
        std::mem::take(&mut self.pending_instructions)
    }
}

/// When the [`interleave`] loop stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop as soon as any lane runs dry — the multiprogrammed-study
    /// convention (all streams present for the whole co-run region).
    AnyExhausted,
    /// Run until every lane is fully consumed (exhausted lanes no longer
    /// receive fetch slots) — full-trace accounting per stream.
    AllExhausted,
}

/// The model-specific half of an interleaved simulation: owns the engines
/// and counters, decides which live lane gets each cycle's fetch slot, and
/// executes the staged branch it is handed.
pub trait InterleaveDriver {
    /// Called once at the start of every cycle, before arbitration (the SMT
    /// model resolves in-flight branches here).
    fn begin_cycle(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// Picks the lane that fetches this cycle. `alive[i]` is `false` for
    /// exhausted lanes; the returned index must name a live lane. Under
    /// [`StopCondition::AnyExhausted`] every lane is always live here.
    fn arbitrate(&mut self, cycle: u64, alive: &[bool]) -> usize;

    /// Executes the picked lane's staged conditional branch.
    /// `gap_instructions` is the instruction count of the non-conditional
    /// records that preceded this branch on the lane since its previous
    /// fetch.
    fn execute(&mut self, lane: usize, record: &BranchRecord, gap_instructions: u64, cycle: u64);

    /// Called once per lane after the loop stops with the lane's
    /// still-unattributed non-conditional instruction count: records the
    /// lane already consumed while staging but has not yet charged to a
    /// fetched branch. Under [`StopCondition::AllExhausted`] that is
    /// exactly the trailing records after the lane's last conditional
    /// branch, completing exact per-lane instruction accounting. Under
    /// [`StopCondition::AnyExhausted`] a lane cut short mid-stream still
    /// has a staged branch and unread records that are **not** included —
    /// drivers needing full-stream denominators must use `AllExhausted`.
    fn finish_lane(&mut self, lane: usize, gap_instructions: u64) {
        let _ = (lane, gap_instructions);
    }
}

/// Runs the cycle-interleaved arbitration loop over `lanes` until `stop`
/// holds, returning the number of fetch cycles simulated.
///
/// Every cycle: `begin_cycle`, then one live lane picked by
/// [`InterleaveDriver::arbitrate`] fetches its staged branch through
/// [`InterleaveDriver::execute`] and re-stages. The loop is deterministic in
/// (lanes, driver): no worker threads, no wall-clock inputs.
///
/// # Errors
///
/// Propagates the first [`FormatError`] any lane's source reports.
pub fn interleave<S: BranchSource, D: InterleaveDriver>(
    lanes: &mut [StreamLane<S>],
    driver: &mut D,
    stop: StopCondition,
) -> Result<u64, FormatError> {
    for lane in lanes.iter_mut() {
        lane.stage()?;
    }
    let mut alive = vec![false; lanes.len()];
    let mut cycle = 0u64;
    loop {
        let mut any = false;
        let mut all = !lanes.is_empty();
        for (slot, lane) in alive.iter_mut().zip(lanes.iter()) {
            *slot = !lane.exhausted();
            any |= *slot;
            all &= *slot;
        }
        let running = match stop {
            StopCondition::AnyExhausted => all,
            StopCondition::AllExhausted => any,
        };
        if !running {
            break;
        }
        cycle += 1;
        driver.begin_cycle(cycle);
        let pick = driver.arbitrate(cycle, &alive);
        assert!(
            alive[pick],
            "arbitrate must pick a live lane (picked {pick})"
        );
        let record = lanes[pick]
            .take_staged()
            .expect("a live lane has a staged branch");
        let gap = lanes[pick].take_pending_instructions();
        driver.execute(pick, &record, gap, cycle);
        lanes[pick].stage()?;
    }
    for (index, lane) in lanes.iter_mut().enumerate() {
        let leftover = lane.take_pending_instructions();
        driver.finish_lane(index, leftover);
    }
    Ok(cycle)
}

/// Round-robin pick: the first live lane strictly after `last` in rotation
/// order. With every lane alive this is `(last + 1) % n`, the classic
/// alternation; exhausted lanes are skipped.
///
/// # Panics
///
/// Panics if no lane is alive.
pub fn next_round_robin(last: usize, alive: &[bool]) -> usize {
    let n = alive.len();
    (1..=n)
        .map(|step| (last + step) % n)
        .find(|&lane| alive[lane])
        .expect("at least one lane must be alive")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_traces::source::SliceSource;
    use tage_traces::suites;

    /// A driver that just logs (lane, pc, gap) in fetch order, round-robin.
    struct Recorder {
        fetched: Vec<(usize, u64, u64)>,
        finished: Vec<(usize, u64)>,
        last: usize,
    }

    impl InterleaveDriver for Recorder {
        fn arbitrate(&mut self, _cycle: u64, alive: &[bool]) -> usize {
            self.last = next_round_robin(self.last, alive);
            self.last
        }

        fn execute(&mut self, lane: usize, record: &BranchRecord, gap: u64, _cycle: u64) {
            self.fetched.push((lane, record.pc, gap));
        }

        fn finish_lane(&mut self, lane: usize, gap: u64) {
            self.finished.push((lane, gap));
        }
    }

    fn recorder(lanes: usize) -> Recorder {
        Recorder {
            fetched: Vec::new(),
            finished: Vec::new(),
            last: lanes - 1,
        }
    }

    #[test]
    fn all_exhausted_covers_every_record_and_instruction_exactly_once() {
        let suite = suites::cbp1_like();
        let traces = [
            suite.trace("FP-1").unwrap().generate(500),
            suite.trace("MM-5").unwrap().generate(300),
            suite.trace("INT-1").unwrap().generate(400),
        ];
        let mut lanes: Vec<StreamLane<SliceSource<'_>>> = traces
            .iter()
            .map(|t| StreamLane::new(SliceSource::from_trace(t)))
            .collect();
        let mut driver = recorder(lanes.len());
        let cycles = interleave(&mut lanes, &mut driver, StopCondition::AllExhausted).unwrap();

        // One fetch per cycle; every conditional branch fetched exactly once.
        assert_eq!(cycles as usize, driver.fetched.len());
        for (lane, trace) in traces.iter().enumerate() {
            let fetched: Vec<u64> = driver
                .fetched
                .iter()
                .filter(|(l, _, _)| *l == lane)
                .map(|(_, pc, _)| *pc)
                .collect();
            let expected: Vec<u64> = trace
                .iter()
                .filter(|r| r.kind.is_conditional())
                .map(|r| r.pc)
                .collect();
            assert_eq!(fetched, expected, "lane {lane} fetch order");

            // Gap instructions (per fetch) + branch counts + trailing drain
            // reconstruct the trace's instruction total exactly once.
            let gaps: u64 = driver
                .fetched
                .iter()
                .filter(|(l, _, _)| *l == lane)
                .map(|(_, _, gap)| gap)
                .sum();
            let branches: u64 = trace
                .iter()
                .filter(|r| r.kind.is_conditional())
                .map(|r| r.instructions())
                .sum();
            let trailing = driver
                .finished
                .iter()
                .find(|(l, _)| *l == lane)
                .map(|(_, gap)| *gap)
                .unwrap_or(0);
            assert_eq!(
                gaps + branches + trailing,
                trace.instruction_count(),
                "lane {lane} instruction accounting"
            );
        }
    }

    #[test]
    fn any_exhausted_stops_at_the_shortest_lane() {
        let suite = suites::cbp1_like();
        let long = suite.trace("FP-1").unwrap().generate(1_000);
        let short = suite.trace("MM-5").unwrap().generate(100);
        let mut lanes = vec![
            StreamLane::new(SliceSource::from_trace(&long)),
            StreamLane::new(SliceSource::from_trace(&short)),
        ];
        let mut driver = recorder(2);
        interleave(&mut lanes, &mut driver, StopCondition::AnyExhausted).unwrap();
        let short_fetches = driver.fetched.iter().filter(|(l, _, _)| *l == 1).count();
        assert_eq!(short_fetches, 100, "the short lane is fully consumed");
        let long_fetches = driver.fetched.iter().filter(|(l, _, _)| *l == 0).count();
        assert!(
            long_fetches <= 101,
            "the long lane stops with the short one (got {long_fetches})"
        );
    }

    #[test]
    fn round_robin_skips_dead_lanes() {
        let alive = [true, false, true, false];
        assert_eq!(next_round_robin(0, &alive), 2);
        assert_eq!(next_round_robin(2, &alive), 0);
        assert_eq!(next_round_robin(3, &alive), 0);
        let all = [true, true, true];
        assert_eq!(next_round_robin(2, &all), 0);
        assert_eq!(next_round_robin(0, &all), 1);
    }

    #[test]
    fn empty_lane_set_is_a_no_op() {
        let mut lanes: Vec<StreamLane<SliceSource<'_>>> = Vec::new();
        let mut driver = recorder(1);
        let cycles = interleave(&mut lanes, &mut driver, StopCondition::AllExhausted).unwrap();
        assert_eq!(cycles, 0);
        assert!(driver.fetched.is_empty());
    }
}
