//! Compare the storage-free TAGE confidence estimation against the
//! storage-based estimators from the prior art (JRS on gshare, self-confidence
//! on a perceptron) using the binary metrics of Grunwald et al.
//!
//! Run with: `cargo run --release --example estimator_comparison`

use tage_confidence_suite::confidence::estimators::{JrsEstimator, SelfConfidenceEstimator};
use tage_confidence_suite::confidence::ConfidenceLevel;
use tage_confidence_suite::predictors::{GsharePredictor, PerceptronPredictor};
use tage_confidence_suite::sim::baseline::run_baseline;
use tage_confidence_suite::sim::runner::{run_trace, RunOptions};
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig};
use tage_confidence_suite::traces::suites;

fn main() {
    let trace = suites::cbp2_like()
        .trace("186.crafty")
        .expect("trace exists")
        .generate(200_000);
    println!("trace: {trace}");
    println!();
    println!(
        "{:<42} {:>10} {:>7} {:>7} {:>7} {:>7}",
        "scheme", "storage", "SENS", "SPEC", "PVP", "PVN"
    );

    let mut gshare = GsharePredictor::new(14, 14);
    let mut jrs = JrsEstimator::classic(12);
    let r = run_baseline(&mut gshare, &mut jrs, &trace);
    println!(
        "{:<42} {:>10} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
        "gshare + JRS (4-bit counters, threshold 15)",
        format!("{} b", r.estimator_storage_bits),
        r.confusion.sensitivity(),
        r.confusion.specificity(),
        r.confusion.pvp(),
        r.confusion.pvn()
    );

    let mut perceptron = PerceptronPredictor::new(512, 32);
    let mut self_conf = SelfConfidenceEstimator::new(60);
    let r = run_baseline(&mut perceptron, &mut self_conf, &trace);
    println!(
        "{:<42} {:>10} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
        "perceptron + self-confidence (threshold 60)",
        "0 b",
        r.confusion.sensitivity(),
        r.confusion.specificity(),
        r.confusion.pvp(),
        r.confusion.pvn()
    );

    let config = TageConfig::medium().with_automaton(CounterAutomaton::paper_default());
    let result = run_trace(&config, &trace, &RunOptions::default());
    let confusion = result.report.binary_confusion(&[ConfidenceLevel::High]);
    println!(
        "{:<42} {:>10} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
        "TAGE-64K storage-free (high vs the rest)",
        "0 b",
        confusion.sensitivity(),
        confusion.specificity(),
        confusion.pvp(),
        confusion.pvn()
    );
    println!();
    println!("The TAGE observation-based estimate needs no confidence table at all.");
}
