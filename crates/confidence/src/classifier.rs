//! The storage-free TAGE confidence classifier.

use core::fmt;

use tage::{TageBlueprint, TagePrediction};

use crate::class::PredictionClass;

/// Default length of the `medium-conf-bim` recency window: the number of
/// subsequent bimodal-provided predictions that are demoted to medium
/// confidence after a bimodal-provided misprediction ("up to 8 branches" in
/// the paper).
pub const DEFAULT_BIM_MISS_WINDOW: u32 = 8;

/// Classifies TAGE predictions into the paper's 7 classes by observing the
/// predictor's outputs only.
///
/// The classifier is *storage free* with respect to predictor state: its
/// only memory is a single small down-counter tracking how many
/// bimodal-provided predictions ago the last bimodal-provided misprediction
/// occurred, which is what distinguishes `medium-conf-bim` from
/// `high-conf-bim`.
///
/// Call [`TageConfidenceClassifier::classify`] with the prediction *before*
/// the branch resolves (that is what a real front-end would do), then
/// [`TageConfidenceClassifier::observe`] once the outcome is known so the
/// recency window can be maintained.
///
/// # Example
///
/// ```
/// use tage::{TageConfig, TagePredictor};
/// use tage_confidence::{PredictionClass, TageConfidenceClassifier};
///
/// let config = TageConfig::small();
/// let mut predictor = TagePredictor::new(config.clone());
/// let mut classifier = TageConfidenceClassifier::new(&config);
///
/// let prediction = predictor.predict(0x8004);
/// // Cold bimodal counters are weak, so the first look-up is low-conf-bim.
/// assert_eq!(classifier.classify(&prediction), PredictionClass::LowConfBim);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfidenceClassifier {
    counter_bits: u8,
    window_length: u32,
    window_remaining: u32,
}

impl TageConfidenceClassifier {
    /// Creates a classifier for predictors built from `blueprint` — a
    /// [`tage::TageConfig`] preset or an explicit [`tage::TageGeometry`] —
    /// using the paper's 8-prediction `medium-conf-bim` window.
    pub fn new(blueprint: &dyn TageBlueprint) -> Self {
        Self::with_window(blueprint, DEFAULT_BIM_MISS_WINDOW)
    }

    /// Creates a classifier with a custom `medium-conf-bim` window length
    /// (0 disables the medium class entirely — used by the ablation bench).
    pub fn with_window(blueprint: &dyn TageBlueprint, window_length: u32) -> Self {
        TageConfidenceClassifier {
            counter_bits: blueprint.tage_geometry().counter_bits,
            window_length,
            window_remaining: 0,
        }
    }

    /// The configured window length.
    pub fn window_length(&self) -> u32 {
        self.window_length
    }

    /// How many upcoming bimodal-provided predictions will still be demoted
    /// to `medium-conf-bim`.
    pub fn window_remaining(&self) -> u32 {
        self.window_remaining
    }

    /// Restores the recency window to a previously observed value (clamped
    /// to the configured window length) — used when resuming a simulation
    /// from a predictor-state snapshot so the classifier picks up exactly
    /// where it left off.
    pub fn set_window_remaining(&mut self, remaining: u32) {
        self.window_remaining = remaining.min(self.window_length);
    }

    /// Classifies a prediction into one of the 7 classes.
    ///
    /// This is a pure observation of the predictor outputs (plus the
    /// classifier's recency window); it does not modify any state.
    pub fn classify(&self, prediction: &TagePrediction) -> PredictionClass {
        if prediction.is_bimodal_provided() {
            if prediction.provider_weak {
                PredictionClass::LowConfBim
            } else if self.window_remaining > 0 {
                PredictionClass::MediumConfBim
            } else {
                PredictionClass::HighConfBim
            }
        } else {
            let saturated_magnitude = (1u32 << self.counter_bits) - 1;
            let magnitude = u32::from(prediction.provider_magnitude);
            if magnitude >= saturated_magnitude {
                // Checked first so that narrow (2-bit) counters, whose
                // saturated magnitude is 3, still get a Stag class.
                PredictionClass::Stag
            } else if magnitude == 1 {
                PredictionClass::Wtag
            } else if magnitude == 3 {
                PredictionClass::NWtag
            } else {
                // Everything between "nearly weak" and "saturated": for the
                // paper's 3-bit counters this is exactly |2c+1| == 5.
                PredictionClass::NStag
            }
        }
    }

    /// Feeds the resolved outcome back so the `medium-conf-bim` recency
    /// window tracks bimodal-provided mispredictions.
    pub fn observe(&mut self, prediction: &TagePrediction, taken: bool) {
        if !prediction.is_bimodal_provided() {
            return;
        }
        if prediction.taken != taken {
            self.window_remaining = self.window_length;
        } else if self.window_remaining > 0 {
            self.window_remaining -= 1;
        }
    }

    /// Convenience: classify, then observe, in one call (the order the
    /// simulation loop needs).
    pub fn classify_and_observe(
        &mut self,
        prediction: &TagePrediction,
        taken: bool,
    ) -> PredictionClass {
        let class = self.classify(prediction);
        self.observe(prediction, taken);
        class
    }

    /// Resets the recency window (e.g. between traces).
    pub fn reset(&mut self) {
        self.window_remaining = 0;
    }
}

impl fmt::Display for TageConfidenceClassifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TAGE confidence classifier (window {}, {} remaining)",
            self.window_length, self.window_remaining
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::{Provider, TageConfig, TagePredictor};

    fn bim_prediction(counter: i8, taken: bool) -> TagePrediction {
        TagePrediction {
            taken,
            provider: Provider::Bimodal,
            provider_counter: counter,
            provider_magnitude: (2 * i16::from(counter) + 1).unsigned_abs() as u8,
            provider_weak: counter == 0 || counter == -1,
            alternate_taken: taken,
            alternate_provider: Provider::Bimodal,
            used_alternate: false,
            tables: tage::TableLookups::cold(4),
            bimodal_index: 0,
            bimodal_counter: counter,
        }
    }

    fn tagged_prediction(counter: i8, taken: bool) -> TagePrediction {
        TagePrediction {
            taken,
            provider: Provider::Tagged { table: 2 },
            provider_counter: counter,
            provider_magnitude: (2 * i16::from(counter) + 1).unsigned_abs() as u8,
            provider_weak: counter == 0 || counter == -1,
            alternate_taken: taken,
            alternate_provider: Provider::Bimodal,
            used_alternate: false,
            tables: tage::TableLookups::cold(4),
            bimodal_index: 0,
            bimodal_counter: 1,
        }
    }

    fn classifier() -> TageConfidenceClassifier {
        TageConfidenceClassifier::new(&TageConfig::small())
    }

    #[test]
    fn weak_bimodal_counter_is_low_conf_bim() {
        let c = classifier();
        assert_eq!(
            c.classify(&bim_prediction(0, true)),
            PredictionClass::LowConfBim
        );
        assert_eq!(
            c.classify(&bim_prediction(-1, false)),
            PredictionClass::LowConfBim
        );
    }

    #[test]
    fn strong_bimodal_counter_far_from_miss_is_high_conf_bim() {
        let c = classifier();
        assert_eq!(
            c.classify(&bim_prediction(1, true)),
            PredictionClass::HighConfBim
        );
        assert_eq!(
            c.classify(&bim_prediction(-2, false)),
            PredictionClass::HighConfBim
        );
    }

    #[test]
    fn tagged_counter_magnitudes_map_to_wtag_nwtag_nstag_stag() {
        let c = classifier();
        assert_eq!(
            c.classify(&tagged_prediction(0, true)),
            PredictionClass::Wtag
        );
        assert_eq!(
            c.classify(&tagged_prediction(-1, false)),
            PredictionClass::Wtag
        );
        assert_eq!(
            c.classify(&tagged_prediction(1, true)),
            PredictionClass::NWtag
        );
        assert_eq!(
            c.classify(&tagged_prediction(-2, false)),
            PredictionClass::NWtag
        );
        assert_eq!(
            c.classify(&tagged_prediction(2, true)),
            PredictionClass::NStag
        );
        assert_eq!(
            c.classify(&tagged_prediction(-3, false)),
            PredictionClass::NStag
        );
        assert_eq!(
            c.classify(&tagged_prediction(3, true)),
            PredictionClass::Stag
        );
        assert_eq!(
            c.classify(&tagged_prediction(-4, false)),
            PredictionClass::Stag
        );
    }

    #[test]
    fn bimodal_misprediction_opens_the_medium_window() {
        let mut c = classifier();
        // A strong-counter bimodal prediction that turns out wrong.
        let wrong = bim_prediction(2, true);
        c.observe(&wrong, false);
        assert_eq!(c.window_remaining(), DEFAULT_BIM_MISS_WINDOW);
        // The next strong bimodal prediction is medium confidence.
        assert_eq!(
            c.classify(&bim_prediction(2, true)),
            PredictionClass::MediumConfBim
        );
        // Weak counters stay low confidence even inside the window.
        assert_eq!(
            c.classify(&bim_prediction(0, true)),
            PredictionClass::LowConfBim
        );
    }

    #[test]
    fn medium_window_closes_after_eight_correct_bimodal_predictions() {
        let mut c = classifier();
        c.observe(&bim_prediction(2, true), false); // miss opens the window
        for _ in 0..DEFAULT_BIM_MISS_WINDOW {
            assert_eq!(
                c.classify(&bim_prediction(2, true)),
                PredictionClass::MediumConfBim
            );
            c.observe(&bim_prediction(2, true), true);
        }
        assert_eq!(
            c.classify(&bim_prediction(2, true)),
            PredictionClass::HighConfBim
        );
    }

    #[test]
    fn tagged_predictions_do_not_consume_or_open_the_window() {
        let mut c = classifier();
        c.observe(&bim_prediction(2, true), false);
        let before = c.window_remaining();
        // A tagged misprediction neither extends nor shrinks the window.
        c.observe(&tagged_prediction(3, true), false);
        c.observe(&tagged_prediction(3, true), true);
        assert_eq!(c.window_remaining(), before);
    }

    #[test]
    fn repeated_bimodal_misses_keep_the_window_open() {
        let mut c = classifier();
        c.observe(&bim_prediction(2, true), false);
        for _ in 0..5 {
            c.observe(&bim_prediction(2, true), true);
        }
        c.observe(&bim_prediction(2, true), false);
        assert_eq!(c.window_remaining(), DEFAULT_BIM_MISS_WINDOW);
    }

    #[test]
    fn zero_window_disables_medium_conf_bim() {
        let mut c = TageConfidenceClassifier::with_window(&TageConfig::small(), 0);
        c.observe(&bim_prediction(2, true), false);
        assert_eq!(
            c.classify(&bim_prediction(2, true)),
            PredictionClass::HighConfBim
        );
    }

    #[test]
    fn classify_and_observe_is_equivalent_to_the_two_calls() {
        let mut a = classifier();
        let mut b = classifier();
        let preds = [
            (bim_prediction(2, true), false),
            (bim_prediction(2, true), true),
            (tagged_prediction(0, true), false),
            (bim_prediction(-2, false), false),
            (bim_prediction(-2, false), true),
        ];
        for (pred, taken) in preds {
            let ca = a.classify_and_observe(&pred, taken);
            let cb = b.classify(&pred);
            b.observe(&pred, taken);
            assert_eq!(ca, cb);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reset_clears_the_window() {
        let mut c = classifier();
        c.observe(&bim_prediction(2, true), false);
        assert!(c.window_remaining() > 0);
        c.reset();
        assert_eq!(c.window_remaining(), 0);
    }

    #[test]
    fn wider_counters_shift_the_saturated_threshold() {
        let config = TageConfig::small()
            .to_builder()
            .counter_bits(4)
            .build()
            .unwrap();
        let c = TageConfidenceClassifier::new(&config);
        // |2c+1| = 7 is *not* saturated for 4-bit counters.
        assert_eq!(
            c.classify(&tagged_prediction(3, true)),
            PredictionClass::NStag
        );
        // |2c+1| = 15 is.
        assert_eq!(
            c.classify(&tagged_prediction(7, true)),
            PredictionClass::Stag
        );
    }

    #[test]
    fn works_against_a_real_predictor_without_panicking() {
        let config = TageConfig::small();
        let mut predictor = TagePredictor::new(config.clone());
        let mut c = TageConfidenceClassifier::new(&config);
        for i in 0..2000u64 {
            let pc = 0x1000 + (i % 16) * 4;
            let taken = i % 3 != 0;
            let pred = predictor.predict(pc);
            let class = c.classify_and_observe(&pred, taken);
            assert!(PredictionClass::ALL.contains(&class));
            predictor.update(pc, taken, &pred);
        }
    }

    #[test]
    fn display_mentions_window() {
        let c = classifier();
        assert!(format!("{c}").contains("window"));
    }
}
