//! Content-addressed on-disk cache of warm simulation states.
//!
//! Segmented runs ([`crate::segment`]) replay a warmup prefix before every
//! measured range so each segment starts from realistically trained tables.
//! That replay is pure overhead, and it is *repeated on every run* of the
//! same grid — a campaign sweeping schemes over one source replays the same
//! warmup once per cell. A [`WarmCache`] eliminates the repeats: the first
//! run replays the warmup once, snapshots the predictor + classifier +
//! adaptive-controller state at the segment boundary, and stores it under a
//! content-addressed key; later runs restore the snapshot and skip straight
//! to the measured range. Because the snapshot captures the **full** dynamic
//! state (tables, histories, folds, RNG, the classifier's recency window and
//! the adaptive controller's measurement window), a cache-hit run is
//! byte-identical to a replay run.
//!
//! # Keying
//!
//! A cache entry is valid only for the exact warm state it captured, so the
//! key digests everything that state depends on:
//!
//! * the **state digest**: the predictor's snapshot spec digest
//!   ([`TagePredictor::spec_digest_for`]) folded with the classifier window
//!   and the adaptive target (`state_digest`) — anything that changes how
//!   the warmup trains;
//! * the **source digest** ([`tage_traces::source::SourceSpec::digest`]) —
//!   which records were replayed;
//! * the **warmup record range** `[start, end)` — how many and which of
//!   them.
//!
//! Entries live as `<fnv64 of the key>.warmstate` files; the state digest is
//! also embedded in each entry's snapshot header, so a key collision or a
//! stale file is detected at decode time and treated as a miss (the warmup
//! is replayed and the entry rewritten). Stores are atomic
//! (temp-file-plus-rename), so concurrent segment workers and killed runs
//! can never leave a torn entry behind.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tage::{TageBlueprint, TagePredictor};
use tage_traces::snapshot::{fnv1a64, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::runner::RunOptions;

/// File extension of cache entries.
const ENTRY_EXTENSION: &str = "warmstate";

/// A directory of content-addressed warm simulation states. Cheap to clone
/// conceptually (it is just a path plus counters); share it by reference
/// across segment workers.
#[derive(Debug)]
pub struct WarmCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WarmCache {
    /// Opens (creating if needed) a warm-state cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the [`std::io::Error`] from creating the directory.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<WarmCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(WarmCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of successful warm-state restores served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that found no (valid) entry so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.{ENTRY_EXTENSION}"))
    }

    /// Reads the raw entry bytes under `key`, if present. Validation happens
    /// at decode time; an unreadable file is a miss.
    pub(crate) fn load(&self, key: u64) -> Option<Vec<u8>> {
        fs::read(self.path_for(key)).ok()
    }

    /// Atomically stores `bytes` under `key`: the entry is written to a
    /// process-unique temp file in the cache directory and renamed into
    /// place, so readers only ever observe complete entries.
    pub(crate) fn store(&self, key: u64, bytes: &[u8]) -> std::io::Result<()> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let temp = self.dir.join(format!(
            "{key:016x}.tmp.{}.{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut file = fs::File::create(&temp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        let result = fs::rename(&temp, self.path_for(key));
        if result.is_err() {
            let _ = fs::remove_file(&temp);
        }
        result
    }

    pub(crate) fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Process-wide warm-cache counters, accumulated across every [`WarmCache`]
/// instance (a long-lived daemon opens one cache per segmented run, so the
/// per-instance counters alone cannot answer "how often has warm-state
/// restore saved a replay since this process started").
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide `(hits, misses)` accumulated across every [`WarmCache`]
/// this process has used — what `tage-serve`'s `GET /metrics` reports as
/// `warmcache_hits` / `warmcache_misses`.
pub fn global_counters() -> (u64, u64) {
    (
        GLOBAL_HITS.load(Ordering::Relaxed),
        GLOBAL_MISSES.load(Ordering::Relaxed),
    )
}

/// Digest of everything about the *simulation configuration* that the warm
/// state depends on: the predictor's snapshot spec digest, the classifier's
/// recency-window length and the adaptive controller's target.
pub(crate) fn state_digest(blueprint: &dyn TageBlueprint, options: &RunOptions) -> u64 {
    fnv1a64(
        format!(
            "warm|predictor={:016x}|window={}|adaptive={:?}",
            TagePredictor::spec_digest_for(blueprint),
            options.bim_miss_window,
            options.adaptive_target_mkp.map(f64::to_bits),
        )
        .as_bytes(),
    )
}

/// The content-addressed entry key: state digest × source digest × warmup
/// record range.
pub(crate) fn entry_key(
    state_digest: u64,
    source_digest: u64,
    warmup_start: u64,
    warmup_end: u64,
) -> u64 {
    fnv1a64(
        format!("{state_digest:016x}|{source_digest:016x}|{warmup_start}|{warmup_end}").as_bytes(),
    )
}

/// A decoded warm simulation state: the predictor snapshot plus the
/// classifier and adaptive-controller dynamic state captured at the same
/// instant.
pub(crate) struct WarmState {
    /// A full [`TagePredictor::snapshot`].
    pub(crate) predictor: Vec<u8>,
    /// [`TageConfidenceClassifier::window_remaining`] at the boundary.
    ///
    /// [`TageConfidenceClassifier::window_remaining`]:
    /// tage_confidence::TageConfidenceClassifier::window_remaining
    pub(crate) window_remaining: u32,
    /// [`AdaptiveSaturationController::dynamic_state`] at the boundary, when
    /// the adaptive controller was running.
    ///
    /// [`AdaptiveSaturationController::dynamic_state`]:
    /// tage_confidence::AdaptiveSaturationController::dynamic_state
    pub(crate) adaptive: Option<(u32, u64, u64, u64)>,
}

/// Frames a warm state as a snapshot whose spec digest is the cache's state
/// digest, so stale or colliding entries fail validation on read.
pub(crate) fn encode_warm_state(state_digest: u64, state: &WarmState) -> Vec<u8> {
    let mut w = SnapshotWriter::new(state_digest);
    w.begin_section();
    w.write_bytes(&state.predictor);
    w.end_section();
    w.begin_section();
    w.write_u32(state.window_remaining);
    match state.adaptive {
        None => {
            w.write_bool(false);
            for _ in 0..4 {
                w.write_u64(0);
            }
        }
        Some((exponent, high_predictions, high_mispredictions, adaptations)) => {
            w.write_bool(true);
            w.write_u64(u64::from(exponent));
            w.write_u64(high_predictions);
            w.write_u64(high_mispredictions);
            w.write_u64(adaptations);
        }
    }
    w.end_section();
    w.finish()
}

/// Decodes an entry written by [`encode_warm_state`].
///
/// # Errors
///
/// Returns the [`SnapshotError`] when the entry is truncated, corrupt or was
/// written for a different simulation configuration — callers treat any
/// error as a cache miss.
pub(crate) fn decode_warm_state(
    bytes: &[u8],
    state_digest: u64,
) -> Result<WarmState, SnapshotError> {
    let mut r = SnapshotReader::new(bytes, state_digest)?;
    r.begin_section()?;
    let predictor = r.read_bytes()?.to_vec();
    r.end_section()?;
    r.begin_section()?;
    let window_remaining = r.read_u32()?;
    let has_adaptive = r.read_bool()?;
    let exponent = r.read_u64()?;
    let high_predictions = r.read_u64()?;
    let high_mispredictions = r.read_u64()?;
    let adaptations = r.read_u64()?;
    r.end_section()?;
    r.finish()?;
    let offset = bytes.len();
    let adaptive = if has_adaptive {
        let exponent = u32::try_from(exponent).map_err(|_| SnapshotError::MalformedSection {
            offset,
            reason: format!("adaptive exponent {exponent} exceeds u32"),
        })?;
        Some((exponent, high_predictions, high_mispredictions, adaptations))
    } else {
        None
    };
    Ok(WarmState {
        predictor,
        window_remaining,
        adaptive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::TageConfig;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tage-warmcache-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_state_round_trips_with_and_without_adaptive() {
        let predictor = TagePredictor::new(TageConfig::small()).snapshot();
        for adaptive in [None, Some((7u32, 100u64, 3u64, 2u64))] {
            let state = WarmState {
                predictor: predictor.clone(),
                window_remaining: 5,
                adaptive,
            };
            let bytes = encode_warm_state(0xABCD, &state);
            let decoded = decode_warm_state(&bytes, 0xABCD).unwrap();
            assert_eq!(decoded.predictor, predictor);
            assert_eq!(decoded.window_remaining, 5);
            assert_eq!(decoded.adaptive, adaptive);
        }
    }

    #[test]
    fn wrong_state_digest_is_rejected() {
        let state = WarmState {
            predictor: vec![1, 2, 3],
            window_remaining: 0,
            adaptive: None,
        };
        let bytes = encode_warm_state(1, &state);
        assert!(matches!(
            decode_warm_state(&bytes, 2),
            Err(SnapshotError::SpecMismatch { .. })
        ));
    }

    #[test]
    fn store_then_load_round_trips_and_counts() {
        let dir = temp_dir("roundtrip");
        let cache = WarmCache::new(&dir).unwrap();
        assert!(cache.load(42).is_none());
        cache.store(42, b"hello").unwrap();
        assert_eq!(cache.load(42).unwrap(), b"hello");
        let (global_hits, global_misses) = global_counters();
        cache.note_miss();
        cache.note_hit();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // The process-wide counters advance alongside the per-instance
        // ones (other tests may also bump them; only the delta is ours).
        let (now_hits, now_misses) = global_counters();
        assert!(now_hits > global_hits);
        assert!(now_misses > global_misses);
        assert_eq!(cache.dir(), dir.as_path());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_every_component() {
        let base = entry_key(1, 2, 3, 4);
        assert_ne!(base, entry_key(9, 2, 3, 4));
        assert_ne!(base, entry_key(1, 9, 3, 4));
        assert_ne!(base, entry_key(1, 2, 9, 4));
        assert_ne!(base, entry_key(1, 2, 3, 9));
        assert_eq!(base, entry_key(1, 2, 3, 4));
    }

    #[test]
    fn state_digest_tracks_options() {
        let config = TageConfig::small();
        let base = state_digest(&config, &RunOptions::default());
        let window = state_digest(
            &config,
            &RunOptions {
                bim_miss_window: 4,
                ..RunOptions::default()
            },
        );
        let adaptive = state_digest(&config, &RunOptions::adaptive());
        let other_config = state_digest(&TageConfig::medium(), &RunOptions::default());
        assert_ne!(base, window);
        assert_ne!(base, adaptive);
        assert_ne!(base, other_config);
    }
}
