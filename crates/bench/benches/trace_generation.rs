//! Micro-benchmark: synthetic trace generation throughput and trace
//! serialisation round-trips.
//!
//! Run with: `cargo bench --bench trace_generation`

use tage_bench::harness::bench;
use tage_traces::reader::TraceReader;
use tage_traces::suites;
use tage_traces::writer::TraceWriter;

const N: usize = 50_000;

fn main() {
    let suite = suites::cbp1_like();
    for name in ["FP-1", "INT-1", "SERV-2"] {
        let spec = suite.trace(name).unwrap().clone();
        bench("trace_generation", name, N as u64, || {
            spec.generate(N).instruction_count()
        });
    }

    let trace = suites::cbp1_like().trace("INT-1").unwrap().generate(N);
    let bytes = TraceWriter::to_binary_bytes(&trace);
    bench("trace_io", "write_binary", bytes.len() as u64, || {
        TraceWriter::to_binary_bytes(&trace).len()
    });
    bench("trace_io", "read_binary", bytes.len() as u64, || {
        TraceReader::read_binary(&bytes[..])
            .expect("valid trace")
            .instruction_count()
    });
}
