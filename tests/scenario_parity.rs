//! Scenario-observer parity contract.
//!
//! The scenario suite (recovery energy, shared-predictor interference,
//! prefetch throttling) rides the same streaming stack as every other
//! experiment, so it inherits the same pins:
//!
//! * every scenario observer accumulates **bit-identical** state whether
//!   the run is materialized (`run(&Trace)`), slice-streamed, file-streamed
//!   (through the binary writer round-trip) or generator-streamed;
//! * the shared-predictor interleaved pass is source-kind independent, and
//!   at N = 1 it degenerates to the private sequential run exactly;
//! * the N-way SMT interleaver at N = 2 matches the two-thread API (the
//!   hardcoded pre-refactor counter pin lives in `tage_sim::smt`'s unit
//!   tests);
//! * `run_point` scenario cells are deterministic and identical across
//!   synthetic and file-backed suites.

use std::path::PathBuf;

use tage_confidence_suite::confidence::TageConfidenceClassifier;
use tage_confidence_suite::sim::engine::SimEngine;
use tage_confidence_suite::sim::interleave::{StopCondition, StreamLane};
use tage_confidence_suite::sim::point::{run_point, PredictorSpec, SchemeSpec, SweepPoint};
use tage_confidence_suite::sim::scenarios::energy::RecoveryEnergyObserver;
use tage_confidence_suite::sim::scenarios::interference::run_shared_predictor;
use tage_confidence_suite::sim::scenarios::prefetch::{
    PrefetchModel, PrefetchObserver, PrefetchPolicy,
};
use tage_confidence_suite::sim::scenarios::ScenarioSpec;
use tage_confidence_suite::sim::smt::{
    simulate_smt_n_sources, simulate_smt_sources, SmtFetchPolicy,
};
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_confidence_suite::traces::source::{
    BinaryFileSource, SliceSource, SourceSuite, SyntheticSource,
};
use tage_confidence_suite::traces::writer::TraceWriter;
use tage_confidence_suite::traces::{suites, TraceSpec};

fn spec(name: &str) -> TraceSpec {
    suites::cbp1_like()
        .trace(name)
        .expect("trace exists")
        .clone()
}

fn config() -> TageConfig {
    TageConfig::small().with_automaton(CounterAutomaton::paper_default())
}

fn engine() -> SimEngine<TagePredictor, TageConfidenceClassifier> {
    let config = config();
    SimEngine::new(
        TagePredictor::new(config.clone()),
        TageConfidenceClassifier::new(&config),
    )
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "tage-scenario-parity-{}-{tag}.trace",
        std::process::id()
    ))
}

/// Runs `observer` over the four ingestion paths and asserts its
/// accumulated state is identical on each.
fn assert_observer_parity<O>(make: impl Fn() -> O)
where
    O: PartialEq + std::fmt::Debug,
    O: for<'p> tage_confidence_suite::sim::EngineObserver<TagePredictor>,
{
    let spec = spec("MM-5");
    let branches = 6_000;
    let trace = spec.generate(branches);

    let mut reference = make();
    engine().run(&trace, &mut reference);

    let mut slice = make();
    engine()
        .run_source(&mut SliceSource::from_trace(&trace), &mut slice)
        .unwrap();
    assert_eq!(slice, reference, "slice-streamed");

    let mut synthetic = make();
    engine()
        .run_source(
            &mut SyntheticSource::from_spec(&spec, branches),
            &mut synthetic,
        )
        .unwrap();
    assert_eq!(synthetic, reference, "generator-streamed");

    let path = temp_path("observer");
    std::fs::write(&path, TraceWriter::to_binary_bytes(&trace)).unwrap();
    let mut file = make();
    engine()
        .run_source(&mut BinaryFileSource::open(&path).unwrap(), &mut file)
        .unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(file, reference, "file-streamed");
}

#[test]
fn recovery_energy_observer_is_bit_identical_across_ingestion_paths() {
    assert_observer_parity(RecoveryEnergyObserver::default);
}

#[test]
fn prefetch_observer_is_bit_identical_across_ingestion_paths() {
    assert_observer_parity(|| {
        PrefetchObserver::new(
            PrefetchPolicy::throttle_low_medium(),
            PrefetchModel::default(),
        )
    });
}

/// The shared-predictor interleaved pass produces identical per-core
/// counters over generator streams, in-memory slices and binary files.
#[test]
fn shared_predictor_pass_is_source_kind_independent() {
    let names = ["FP-1", "SERV-2", "MM-5"];
    let branches = 4_000;

    let mut synthetic_engine = engine();
    let synthetic = run_shared_predictor(
        &mut synthetic_engine,
        names
            .iter()
            .map(|n| SyntheticSource::from_spec(&spec(n), branches))
            .collect(),
    )
    .unwrap();

    let traces: Vec<_> = names.iter().map(|n| spec(n).generate(branches)).collect();
    let mut slice_engine = engine();
    let sliced = run_shared_predictor(
        &mut slice_engine,
        traces.iter().map(SliceSource::from_trace).collect(),
    )
    .unwrap();
    assert_eq!(sliced, synthetic);

    let paths: Vec<PathBuf> = traces
        .iter()
        .enumerate()
        .map(|(i, trace)| {
            let path = temp_path(&format!("shared-{i}"));
            std::fs::write(&path, TraceWriter::to_binary_bytes(trace)).unwrap();
            path
        })
        .collect();
    let mut file_engine = engine();
    let filed = run_shared_predictor(
        &mut file_engine,
        paths
            .iter()
            .map(|p| BinaryFileSource::open(p).unwrap())
            .collect(),
    )
    .unwrap();
    for path in &paths {
        std::fs::remove_file(path).unwrap();
    }
    assert_eq!(filed, synthetic);
}

/// One lane through the shared engine is exactly the private sequential
/// run: same branches, mispredictions and instruction totals.
#[test]
fn single_lane_shared_pass_degenerates_to_the_sequential_run() {
    let branches = 5_000;
    let mut shared_engine = engine();
    let shared = run_shared_predictor(
        &mut shared_engine,
        vec![SyntheticSource::from_spec(&spec("INT-1"), branches)],
    )
    .unwrap();

    let mut private_engine = engine();
    let summary = private_engine
        .run_source(
            &mut SyntheticSource::from_spec(&spec("INT-1"), branches),
            &mut (),
        )
        .unwrap();
    assert_eq!(shared.cores[0].branches, summary.measured_branches);
    assert_eq!(
        shared.cores[0].mispredictions,
        summary.measured_mispredictions
    );
    assert_eq!(shared.cores[0].instructions, summary.measured_instructions);
}

/// The N-way SMT entry point at N = 2 is the two-thread API, counter for
/// counter (the hardcoded pre-refactor pin lives in `tage_sim::smt`).
#[test]
fn n_way_smt_at_two_threads_matches_the_pairwise_api() {
    for policy in [SmtFetchPolicy::RoundRobin, SmtFetchPolicy::ConfidenceCount] {
        let pairwise = simulate_smt_sources(
            &config(),
            [
                SyntheticSource::from_spec(&spec("FP-1"), 5_000),
                SyntheticSource::from_spec(&spec("MM-5"), 5_000),
            ],
            policy,
        )
        .unwrap();
        let n_way = simulate_smt_n_sources(
            &config(),
            vec![
                SyntheticSource::from_spec(&spec("FP-1"), 5_000),
                SyntheticSource::from_spec(&spec("MM-5"), 5_000),
            ],
            policy,
        )
        .unwrap();
        assert_eq!(n_way.threads.len(), 2);
        assert_eq!(n_way.cycles, pairwise.cycles, "{policy}");
        assert_eq!(n_way.threads[0], pairwise.threads[0], "{policy}");
        assert_eq!(n_way.threads[1], pairwise.threads[1], "{policy}");
    }
}

/// Scenario sweep-point cells are deterministic, and file-backed suites
/// reproduce the synthetic counters and metrics (modulo the suite label).
#[test]
fn scenario_points_are_deterministic_and_file_backed_equivalent() {
    let mini = suites::cbp1_mini();
    let branches = 2_000;

    let dir = std::env::temp_dir().join(format!("tage-scenario-files-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for spec in mini.traces() {
        std::fs::write(
            dir.join(format!("{}.trace", spec.name())),
            TraceWriter::to_binary_bytes(&spec.generate(branches)),
        )
        .unwrap();
    }
    let file_suite = SourceSuite::from_dir(&dir).unwrap();

    for scenario in [
        ScenarioSpec::RecoveryEnergy,
        ScenarioSpec::SharedPredictor,
        ScenarioSpec::PrefetchThrottle,
    ] {
        let synthetic_point = SweepPoint::over_suite(
            PredictorSpec::parse("tage-16k").unwrap(),
            SchemeSpec::parse("storage-free").unwrap(),
            &mini,
        )
        .with_scenario(scenario);
        let first = run_point(&synthetic_point, branches).unwrap();
        let second = run_point(&synthetic_point, branches).unwrap();
        assert_eq!(first, second, "{scenario}: deterministic");
        assert!(!first.scenario_metrics.is_empty(), "{scenario}");

        let file_point = SweepPoint {
            predictor: PredictorSpec::parse("tage-16k").unwrap(),
            scheme: SchemeSpec::parse("storage-free").unwrap(),
            suite: file_suite.clone(),
            scenario,
        };
        let filed = run_point(&file_point, branches).unwrap();
        let mut synthetic_traces = first.traces.clone();
        synthetic_traces.sort_by(|a, b| a.trace_name.cmp(&b.trace_name));
        let mut file_traces = filed.traces.clone();
        file_traces.sort_by(|a, b| a.trace_name.cmp(&b.trace_name));
        assert_eq!(file_traces, synthetic_traces, "{scenario}: counters");
        assert_eq!(filed.aggregate, first.aggregate, "{scenario}: aggregate");
        // Observer-scenario metrics are insensitive to suite order; the
        // shared-predictor interleaving depends on core order, which the
        // directory scan happens to preserve for the mini suite only if the
        // file names sort like the registry — compare only when they do.
        let same_order = filed
            .traces
            .iter()
            .map(|t| &t.trace_name)
            .eq(first.traces.iter().map(|t| &t.trace_name));
        if scenario != ScenarioSpec::SharedPredictor || same_order {
            assert_eq!(
                filed.scenario_metrics, first.scenario_metrics,
                "{scenario}: metrics"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The interleave core drives the same records the sources hold — spot
/// check the lane staging against a hand-rolled scan, covering the
/// streamed-vs-materialized contract at the lowest layer the scenarios
/// build on.
#[test]
fn stream_lanes_stage_identically_over_synthetic_and_slice_sources() {
    use tage_confidence_suite::sim::interleave::{interleave, InterleaveDriver};
    use tage_confidence_suite::traces::BranchRecord;

    #[derive(Default)]
    struct Collect {
        records: Vec<(usize, u64, bool, u64)>,
    }
    impl InterleaveDriver for Collect {
        fn arbitrate(&mut self, cycle: u64, alive: &[bool]) -> usize {
            // Deterministic rotation over live lanes.
            let start = (cycle as usize) % alive.len();
            (0..alive.len())
                .map(|step| (start + step) % alive.len())
                .find(|&lane| alive[lane])
                .unwrap()
        }
        fn execute(&mut self, lane: usize, record: &BranchRecord, gap: u64, _cycle: u64) {
            self.records.push((lane, record.pc, record.taken, gap));
        }
    }

    let branches = 1_500;
    let specs = [spec("FP-2"), spec("INT-2")];
    let mut synthetic_lanes: Vec<StreamLane<_>> = specs
        .iter()
        .map(|s| StreamLane::new(SyntheticSource::from_spec(s, branches)))
        .collect();
    let mut synthetic_driver = Collect::default();
    interleave(
        &mut synthetic_lanes,
        &mut synthetic_driver,
        StopCondition::AllExhausted,
    )
    .unwrap();

    let traces: Vec<_> = specs.iter().map(|s| s.generate(branches)).collect();
    let mut slice_lanes: Vec<StreamLane<_>> = traces
        .iter()
        .map(|t| StreamLane::new(SliceSource::from_trace(t)))
        .collect();
    let mut slice_driver = Collect::default();
    interleave(
        &mut slice_lanes,
        &mut slice_driver,
        StopCondition::AllExhausted,
    )
    .unwrap();

    assert_eq!(synthetic_driver.records, slice_driver.records);
    let conditional_total: usize = traces
        .iter()
        .map(|t| t.iter().filter(|r| r.kind.is_conditional()).count())
        .sum();
    assert_eq!(synthetic_driver.records.len(), conditional_total);
}
