//! Shared encode/decode helpers for predictor snapshots.

use tage_traces::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

use crate::history::HistoryRegister;

/// Writes a history register's backing words, count-prefixed.
pub(crate) fn write_history(w: &mut SnapshotWriter, history: &HistoryRegister) {
    let words = history.words();
    w.write_u32(words.len() as u32);
    for &word in words {
        w.write_u64(word);
    }
}

/// Reads words written by [`write_history`], verifying the count matches the
/// restoring register's geometry (which the spec digest already pins).
pub(crate) fn read_history(
    r: &mut SnapshotReader<'_>,
    expected_words: usize,
) -> Result<Vec<u64>, SnapshotError> {
    let offset = r.offset();
    let count = r.read_u32()? as usize;
    if count != expected_words {
        return Err(SnapshotError::MalformedSection {
            offset,
            reason: format!("history holds {count} words, predictor expects {expected_words}"),
        });
    }
    let mut words = Vec::with_capacity(count);
    for _ in 0..count {
        words.push(r.read_u64()?);
    }
    Ok(words)
}
