//! Section 6.2 sweep: how the saturation probability trades high-confidence
//! coverage against high-confidence purity (the paper compares 1/16 and
//! 1/128 on the 16 Kbit predictor, CBP-1).

use tage::TageConfig;
use tage_bench::{branches_from_args, print_header};
use tage_sim::experiment::probability_sweep;
use tage_sim::report::{fraction, mkp, mpki, probability, TextTable};
use tage_traces::suites;

fn main() {
    let branches = branches_from_args();
    print_header(
        "Section 6.2 — saturation-probability sweep, 16 Kbit predictor, CBP-1-like",
        branches,
    );
    let rows = probability_sweep(
        &TageConfig::small(),
        &suites::cbp1_like(),
        branches,
        &[0, 2, 4, 7, 10],
    );
    let mut table = TextTable::new(vec![
        "probability",
        "high Pcov",
        "high MPcov",
        "high MPrate (MKP)",
        "overall MPKI",
    ]);
    for row in &rows {
        table.row(vec![
            probability(row.probability),
            fraction(row.high_pcov),
            fraction(row.high_mpcov),
            mkp(row.high_mprate_mkp),
            mpki(row.mpki),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("Expected shape: larger probabilities grow the high-confidence class but raise its misprediction rate.");
}
