//! A fetch-gating / throttling model driven by confidence estimation.
//!
//! Fetch gating is the canonical application of branch confidence (Manne et
//! al.; Aragón et al.): when the probability that fetch is on the wrong path
//! becomes high, stop (gate) or slow down (throttle) instruction fetch to
//! save the energy of fetching, decoding and eventually squashing wrong-path
//! instructions.
//!
//! The model here is deliberately simple and analytical — it charges, per
//! low/medium-confidence prediction, either the wrong-path instructions that
//! would have been fetched (if no gating) or the fetch slots lost (if the
//! prediction was actually correct and fetch was gated). That is enough to
//! reproduce the qualitative trade-off the paper's Section 2 describes and
//! to compare gating policies built on the three confidence levels.
//!
//! The front-end accounting is an [`EngineObserver`] plugged into the
//! generic [`SimEngine`], so the gating model shares the exact simulation
//! path (and can be attached to any predictor × confidence-scheme pair) of
//! every other experiment.

use core::fmt;

use tage::{TageConfig, TagePredictor};
use tage_confidence::{ConfidenceLevel, TageConfidenceClassifier};
use tage_predictors::PredictorCore;
use tage_traces::format::FormatError;
use tage_traces::source::{BranchSource, SliceSource};
use tage_traces::Trace;

use crate::engine::{BranchEvent, EngineObserver, SimEngine};

/// What the front-end does when a branch of a given confidence level is
/// in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GatingAction {
    /// Keep fetching at full rate.
    Fetch,
    /// Halve the fetch rate (throttling).
    Throttle,
    /// Stop fetching until the branch resolves (gating).
    Gate,
}

/// A gating policy: one action per confidence level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatingPolicy {
    /// Action for low-confidence predictions.
    pub on_low: GatingAction,
    /// Action for medium-confidence predictions.
    pub on_medium: GatingAction,
    /// Action for high-confidence predictions.
    pub on_high: GatingAction,
}

impl GatingPolicy {
    /// Never gate (the baseline processor).
    pub fn never() -> Self {
        GatingPolicy {
            on_low: GatingAction::Fetch,
            on_medium: GatingAction::Fetch,
            on_high: GatingAction::Fetch,
        }
    }

    /// Gate on low confidence only (the classical binary policy).
    pub fn gate_low() -> Self {
        GatingPolicy {
            on_low: GatingAction::Gate,
            on_medium: GatingAction::Fetch,
            on_high: GatingAction::Fetch,
        }
    }

    /// Gate on low confidence and throttle on medium confidence — the
    /// three-level policy the paper's classification enables (as suggested
    /// by Akkary et al. and Malik et al.).
    pub fn gate_low_throttle_medium() -> Self {
        GatingPolicy {
            on_low: GatingAction::Gate,
            on_medium: GatingAction::Throttle,
            on_high: GatingAction::Fetch,
        }
    }

    /// The action for a given confidence level.
    pub fn action(&self, level: ConfidenceLevel) -> GatingAction {
        match level {
            ConfidenceLevel::Low => self.on_low,
            ConfidenceLevel::Medium => self.on_medium,
            ConfidenceLevel::High => self.on_high,
        }
    }
}

/// Cost parameters of the front-end model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingModel {
    /// Average number of wrong-path instructions fetched per unresolved
    /// misprediction when fetch keeps running (branch-resolution latency ×
    /// fetch width).
    pub wrong_path_instructions: f64,
    /// Fraction of the wrong-path fetch still performed when throttling
    /// (0.5 = half rate).
    pub throttle_factor: f64,
}

impl Default for GatingModel {
    fn default() -> Self {
        GatingModel {
            // 16-cycle resolution × 4-wide fetch.
            wrong_path_instructions: 64.0,
            throttle_factor: 0.5,
        }
    }
}

/// Outcome of simulating a gating policy over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct GatingResult {
    /// Trace name.
    pub trace_name: String,
    /// Policy simulated.
    pub policy: GatingPolicy,
    /// Conditional branches simulated.
    pub branches: u64,
    /// Mispredictions.
    pub mispredictions: u64,
    /// Instructions attributed to the measured region — the denominator of
    /// every per-kilo-instruction rate this result reports.
    pub measured_instructions: u64,
    /// Wrong-path instructions fetched (energy waste).
    pub wrong_path_fetched: f64,
    /// Fetch slots lost by gating/throttling branches that were actually
    /// predicted correctly (performance cost).
    pub slots_lost_on_correct: f64,
    /// Wrong-path instructions avoided relative to never gating.
    pub wrong_path_avoided: f64,
}

impl GatingResult {
    /// Wrong-path instructions fetched per *branch* (a proxy for front-end
    /// energy waste normalized to prediction count; see
    /// [`GatingResult::waste_mpki`] for the per-kilo-instruction rate).
    pub fn waste_per_branch(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.wrong_path_fetched / self.branches as f64
        }
    }

    /// Wrong-path instructions fetched per kilo-instruction of useful work
    /// — the energy-waste rate on the same denominator as MPKI, using the
    /// measured instruction count the run actually observed.
    pub fn waste_mpki(&self) -> f64 {
        crate::per_kilo_instruction(self.wrong_path_fetched, self.measured_instructions)
    }

    /// Fetch slots lost per kilo-instruction of useful work (the
    /// performance cost on the MPKI denominator).
    pub fn loss_mpki(&self) -> f64 {
        crate::per_kilo_instruction(self.slots_lost_on_correct, self.measured_instructions)
    }

    /// Fetch slots lost per branch (a proxy for the performance cost of the
    /// policy).
    pub fn loss_per_branch(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.slots_lost_on_correct / self.branches as f64
        }
    }
}

impl fmt::Display for GatingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: waste {:.2} instr/branch, loss {:.2} slots/branch",
            self.trace_name,
            self.waste_per_branch(),
            self.loss_per_branch()
        )
    }
}

/// The gating front-end accounting as a generic engine observer: charges
/// each confidence-graded prediction with the policy's energy/performance
/// cost. Works with any predictor driven through the engine.
#[derive(Debug)]
pub struct GatingObserver {
    policy: GatingPolicy,
    model: GatingModel,
    /// Wrong-path instructions fetched (energy waste).
    pub wrong_path_fetched: f64,
    /// Fetch slots lost on gated/throttled correct predictions.
    pub slots_lost_on_correct: f64,
    /// Wrong-path instructions avoided relative to never gating.
    pub wrong_path_avoided: f64,
}

impl GatingObserver {
    /// Creates an observer for the given policy and cost model.
    pub fn new(policy: GatingPolicy, model: GatingModel) -> Self {
        GatingObserver {
            policy,
            model,
            wrong_path_fetched: 0.0,
            slots_lost_on_correct: 0.0,
            wrong_path_avoided: 0.0,
        }
    }
}

impl<P: PredictorCore> EngineObserver<P> for GatingObserver {
    fn on_branch(&mut self, _predictor: &mut P, event: &BranchEvent<'_, P::Lookup>) {
        // Keep the cost accounting on the same region as the engine's
        // measured branch counts, so per-branch ratios stay consistent when
        // the engine runs with a warm-up prefix.
        if !event.in_measurement {
            return;
        }
        let action = self.policy.action(event.assessment.level);
        match (action, event.mispredicted) {
            (GatingAction::Fetch, true) => {
                self.wrong_path_fetched += self.model.wrong_path_instructions;
            }
            (GatingAction::Fetch, false) => {}
            (GatingAction::Throttle, true) => {
                let fetched = self.model.wrong_path_instructions * self.model.throttle_factor;
                self.wrong_path_fetched += fetched;
                self.wrong_path_avoided += self.model.wrong_path_instructions - fetched;
            }
            (GatingAction::Throttle, false) => {
                self.slots_lost_on_correct +=
                    self.model.wrong_path_instructions * (1.0 - self.model.throttle_factor);
            }
            (GatingAction::Gate, true) => {
                self.wrong_path_avoided += self.model.wrong_path_instructions;
            }
            (GatingAction::Gate, false) => {
                self.slots_lost_on_correct += self.model.wrong_path_instructions;
            }
        }
    }
}

/// Simulates a gating policy on top of a TAGE predictor and its storage-free
/// confidence classifier.
pub fn simulate_gating(
    config: &TageConfig,
    trace: &Trace,
    policy: GatingPolicy,
    model: &GatingModel,
) -> GatingResult {
    let mut source = SliceSource::from_trace(trace);
    simulate_gating_source(config, &mut source, policy, model)
        .expect("in-memory slice sources are infallible")
}

/// [`simulate_gating`] over a streaming [`BranchSource`], so front-end
/// energy studies run on out-of-core traces too.
///
/// # Errors
///
/// Propagates the first [`FormatError`] the source reports.
pub fn simulate_gating_source<S: BranchSource + ?Sized>(
    config: &TageConfig,
    source: &mut S,
    policy: GatingPolicy,
    model: &GatingModel,
) -> Result<GatingResult, FormatError> {
    let mut engine = SimEngine::new(
        TagePredictor::new(config.clone()),
        TageConfidenceClassifier::new(config),
    );
    let trace_name = source.name().to_string();
    let mut observer = GatingObserver::new(policy, *model);
    let summary = engine.run_source(source, &mut observer)?;
    Ok(GatingResult {
        trace_name,
        policy,
        branches: summary.measured_branches,
        mispredictions: summary.measured_mispredictions,
        measured_instructions: summary.measured_instructions,
        wrong_path_fetched: observer.wrong_path_fetched,
        slots_lost_on_correct: observer.slots_lost_on_correct,
        wrong_path_avoided: observer.wrong_path_avoided,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::CounterAutomaton;
    use tage_traces::suites;

    fn trace() -> Trace {
        suites::cbp1_like().trace("MM-5").unwrap().generate(30_000)
    }

    fn config() -> TageConfig {
        TageConfig::small().with_automaton(CounterAutomaton::paper_default())
    }

    #[test]
    fn never_gating_wastes_the_most_and_loses_nothing() {
        let trace = trace();
        let never = simulate_gating(
            &config(),
            &trace,
            GatingPolicy::never(),
            &GatingModel::default(),
        );
        let gate = simulate_gating(
            &config(),
            &trace,
            GatingPolicy::gate_low(),
            &GatingModel::default(),
        );
        assert!(never.wrong_path_fetched > gate.wrong_path_fetched);
        assert_eq!(never.slots_lost_on_correct, 0.0);
        assert_eq!(never.wrong_path_avoided, 0.0);
        assert!(gate.slots_lost_on_correct > 0.0);
        assert!(gate.wrong_path_avoided > 0.0);
    }

    #[test]
    fn confidence_gating_avoids_more_waste_than_it_costs() {
        // Because low-confidence predictions mispredict ≳ 30 % of the time,
        // gating them should avoid more wrong-path fetch than the slots it
        // loses by a healthy factor ≥ the low-confidence accuracy trade-off.
        let trace = trace();
        let gate = simulate_gating(
            &config(),
            &trace,
            GatingPolicy::gate_low(),
            &GatingModel::default(),
        );
        assert!(
            gate.wrong_path_avoided > gate.slots_lost_on_correct * 0.25,
            "avoided {} vs lost {}",
            gate.wrong_path_avoided,
            gate.slots_lost_on_correct
        );
    }

    #[test]
    fn three_level_policy_sits_between_never_and_gate_low() {
        let trace = trace();
        let never = simulate_gating(
            &config(),
            &trace,
            GatingPolicy::never(),
            &GatingModel::default(),
        );
        let three = simulate_gating(
            &config(),
            &trace,
            GatingPolicy::gate_low_throttle_medium(),
            &GatingModel::default(),
        );
        assert!(three.wrong_path_fetched < never.wrong_path_fetched);
        assert!(three.waste_per_branch() < never.waste_per_branch());
        assert!(three.waste_mpki() < never.waste_mpki());
        assert!(three.loss_per_branch() > 0.0);
        assert!(three.loss_mpki() > 0.0);
    }

    /// The per-kilo-instruction rates divide by the measured instruction
    /// count, not the branch count — the regression the `waste_per_branch`
    /// doc mix-up hid.
    #[test]
    fn waste_mpki_normalizes_by_instructions_not_branches() {
        let trace = trace();
        let result = simulate_gating(
            &config(),
            &trace,
            GatingPolicy::never(),
            &GatingModel::default(),
        );
        assert_eq!(result.measured_instructions, trace.instruction_count());
        assert!(
            result.measured_instructions > result.branches,
            "traces carry non-branch instructions, so the two denominators differ"
        );
        let expected_mpki =
            result.wrong_path_fetched * 1000.0 / result.measured_instructions as f64;
        assert!((result.waste_mpki() - expected_mpki).abs() < 1e-12);
        let expected_per_branch = result.wrong_path_fetched / result.branches as f64;
        assert!((result.waste_per_branch() - expected_per_branch).abs() < 1e-12);
        assert!(
            result.waste_mpki() < result.waste_per_branch() * 1000.0,
            "per-KI waste must be measured against the larger instruction denominator"
        );
    }

    #[test]
    fn source_driven_gating_matches_the_materialized_path() {
        use tage_traces::source::SyntheticSource;
        let spec = suites::cbp1_like().trace("MM-5").unwrap().clone();
        let trace = spec.generate(30_000);
        let reference = simulate_gating(
            &config(),
            &trace,
            GatingPolicy::gate_low(),
            &GatingModel::default(),
        );
        let mut source = SyntheticSource::from_spec(&spec, 30_000);
        let streamed = simulate_gating_source(
            &config(),
            &mut source,
            GatingPolicy::gate_low(),
            &GatingModel::default(),
        )
        .unwrap();
        assert_eq!(streamed, reference);
    }

    #[test]
    fn policy_accessors_and_display() {
        let policy = GatingPolicy::gate_low_throttle_medium();
        assert_eq!(policy.action(ConfidenceLevel::Low), GatingAction::Gate);
        assert_eq!(
            policy.action(ConfidenceLevel::Medium),
            GatingAction::Throttle
        );
        assert_eq!(policy.action(ConfidenceLevel::High), GatingAction::Fetch);
        let trace = suites::cbp1_like().trace("FP-1").unwrap().generate(1_000);
        let result = simulate_gating(&config(), &trace, policy, &GatingModel::default());
        assert!(format!("{result}").contains("FP-1"));
        assert_eq!(result.branches, 1_000);
    }
}
