//! Throughput smoke test: end-to-end simulated branches per second through
//! the generic engine, for the perf trajectory tracked across PRs.
//!
//! Prints a human-readable summary and writes `BENCH_throughput.json` into
//! the current directory (override the path with the second CLI argument).
//!
//! Run with: `cargo run --release --bin throughput [branches] [json-path]`

use std::time::Instant;

use tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_bench::{branches_from_args, print_header};
use tage_confidence::TageConfidenceClassifier;
use tage_sim::engine::{default_parallelism, ReportObserver, SimEngine};
use tage_sim::runner::RunOptions;
use tage_sim::suite::run_suite;
use tage_traces::suites;

struct Measurement {
    name: &'static str,
    branches: u64,
    seconds: f64,
}

impl Measurement {
    fn branches_per_second(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.branches as f64 / self.seconds
        }
    }
}

fn main() {
    let branches = branches_from_args();
    print_header("Throughput smoke — simulated branches per second", branches);

    let config = TageConfig::medium().with_automaton(CounterAutomaton::paper_default());
    let mut measurements = Vec::new();

    // 1. Single-trace engine throughput (predict + classify + train).
    let trace = suites::cbp1_like()
        .trace("INT-1")
        .expect("trace exists")
        .generate(branches);
    let mut engine = SimEngine::new(
        TagePredictor::new(config.clone()),
        TageConfidenceClassifier::new(&config),
    );
    let mut report = ReportObserver::default();
    let start = Instant::now();
    let summary = engine.run(&trace, &mut report);
    measurements.push(Measurement {
        name: "engine_single_trace",
        branches: summary.measured_branches,
        seconds: start.elapsed().as_secs_f64(),
    });

    // 2. Whole-suite throughput with parallel per-trace sharding.
    let suite = suites::cbp1_like();
    let per_trace = (branches / 10).max(1_000);
    let start = Instant::now();
    let result = run_suite(&config, &suite, per_trace, &RunOptions::default());
    measurements.push(Measurement {
        name: "suite_parallel",
        branches: result.aggregate.total().predictions,
        seconds: start.elapsed().as_secs_f64(),
    });

    println!(
        "{:<22} {:>14} {:>10} {:>16}",
        "measurement", "branches", "seconds", "branches/sec"
    );
    for m in &measurements {
        println!(
            "{:<22} {:>14} {:>10.3} {:>16.0}",
            m.name,
            m.branches,
            m.seconds,
            m.branches_per_second()
        );
    }
    println!();
    println!("workers available: {}", default_parallelism());

    // Machine-readable trajectory record (hand-rolled JSON: no deps).
    let json_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let entries: Vec<String> = measurements
        .iter()
        .map(|m| {
            format!(
                "  {{\"name\": \"{}\", \"branches\": {}, \"seconds\": {:.6}, \"branches_per_sec\": {:.0}}}",
                m.name,
                m.branches,
                m.seconds,
                m.branches_per_second()
            )
        })
        .collect();
    let json = format!(
        "{{\n \"bench\": \"throughput\",\n \"workers\": {},\n \"measurements\": [\n{}\n ]\n}}\n",
        default_parallelism(),
        entries.join(",\n")
    );
    match std::fs::write(&json_path, json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(error) => eprintln!("could not write {json_path}: {error}"),
    }
}
