//! Benchmark harness: shared helpers for the table/figure regeneration
//! binaries, plus the [`campaign`] cross-product runner behind `tage-bench`.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index). They all accept an optional
//! first argument: the number of conditional branches to simulate per trace
//! (the traces in the paper are ~30 M instructions long; the default here is
//! chosen so a full binary completes in seconds to minutes on a laptop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cellstore;
pub mod explore;
pub mod service;

/// Default number of conditional branches simulated per trace by the
/// experiment binaries.
pub const DEFAULT_BRANCHES_PER_TRACE: usize = 200_000;

/// Reads the branches-per-trace count from the first CLI argument, falling
/// back to [`DEFAULT_BRANCHES_PER_TRACE`].
pub fn branches_from_args() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.replace('_', "").parse().ok())
        .unwrap_or(DEFAULT_BRANCHES_PER_TRACE)
}

/// Prints the standard experiment header used by every binary.
pub fn print_header(what: &str, branches: usize) {
    println!("== {what} ==");
    println!(
        "synthetic CBP-1-like / CBP-2-like workloads, {branches} conditional branches per trace"
    );
    println!();
}

pub mod cli {
    //! Tiny flag-parsing helpers shared by the bench binaries (the
    //! workspace carries no argument-parsing dependency).

    /// Pulls the value following `flag` from the argument iterator.
    pub fn require_value(
        args: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Result<String, String> {
        args.next()
            .ok_or_else(|| format!("{flag} requires a value"))
    }

    /// Parses a count argument, allowing `_` separators (`200_000`).
    pub fn parse_count(what: &str, value: &str) -> Result<usize, String> {
        value
            .replace('_', "")
            .parse()
            .map_err(|_| format!("{what}: not a number: {value}"))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn count_parsing_accepts_separators_and_rejects_garbage() {
            assert_eq!(parse_count("branches", "200_000"), Ok(200_000));
            assert_eq!(parse_count("branches", "42"), Ok(42));
            let error = parse_count("--workers", "four").unwrap_err();
            assert!(error.contains("--workers") && error.contains("four"));
        }

        #[test]
        fn require_value_reports_the_flag_name() {
            let mut args = vec!["x".to_string()].into_iter();
            assert_eq!(require_value(&mut args, "--out"), Ok("x".to_string()));
            assert!(require_value(&mut args, "--out")
                .unwrap_err()
                .contains("--out"));
        }
    }
}

/// Minimal structural helpers for hand-rolled JSON files (re-exported from
/// `tage_traces::jsonish`, where they moved so the `tage` crate can parse
/// geometry files without a dependency cycle).
pub use tage_traces::jsonish;

pub mod trajectory {
    //! Helpers for the `BENCH_throughput.json` benchmark-trajectory file.
    //!
    //! The file is an append-only series of measurement entries (see
    //! `docs/BENCHMARKS.md` for the schema): every `throughput` run appends
    //! one labelled entry, so the file records how hot-path performance moved
    //! across PRs. The workspace has no JSON dependency, so these helpers do
    //! the minimal structural work on the formats the `throughput` bin
    //! itself writes: extracting the existing entries (including migrating
    //! the schema-1 file that predates the trajectory) and re-rendering the
    //! file with a new entry appended.
    //!
    //! Re-running with the *same* label replaces the last entry instead of
    //! appending, so repeated local `verify.sh` runs do not grow the file.

    /// Current schema version of the trajectory file.
    pub const SCHEMA_VERSION: u32 = 2;

    /// Label under which a schema-1 file's measurements are preserved when
    /// the file is first migrated to the trajectory schema.
    pub const LEGACY_LABEL: &str = "nested-vec baseline (schema 1)";

    use crate::jsonish::{self, extract_array_objects};

    /// Extracts the existing trajectory entries from a previously written
    /// `BENCH_throughput.json`, whatever its schema:
    ///
    /// * schema 2: the entries of the `trajectory` array, verbatim;
    /// * schema 1 (a bare `measurements` array): one synthesised entry
    ///   labelled [`LEGACY_LABEL`] wrapping those measurements.
    pub fn existing_entries(json: &str) -> Vec<String> {
        let entries = extract_array_objects(json, "trajectory");
        if !entries.is_empty() {
            return entries;
        }
        let measurements = extract_array_objects(json, "measurements");
        if measurements.is_empty() {
            return Vec::new();
        }
        vec![render_entry(LEGACY_LABEL, &measurements)]
    }

    /// Extracts an entry's `label` value (unescaped), if present.
    pub fn entry_label(entry: &str) -> Option<String> {
        jsonish::string_field(entry, "label")
    }

    /// Extracts the numeric `field` of the measurement named `name` inside a
    /// trajectory entry — e.g. the `branches_per_sec` of
    /// `engine_single_trace`, which the `throughput` bin's
    /// `--check-regression` mode compares against the latest committed
    /// milestone.
    pub fn entry_measurement(entry: &str, name: &str, field: &str) -> Option<f64> {
        extract_array_objects(entry, "measurements")
            .iter()
            .find(|m| jsonish::string_field(m, "name").as_deref() == Some(name))
            .and_then(|m| jsonish::number_field(m, field))
    }

    /// Renders one trajectory entry from a label and raw measurement
    /// objects.
    pub fn render_entry(label: &str, measurements: &[String]) -> String {
        let measurements: Vec<String> = measurements
            .iter()
            .map(|m| format!("    {}", m.trim()))
            .collect();
        format!(
            "  {{\n   \"label\": \"{}\",\n   \"measurements\": [\n{}\n   ]\n  }}",
            jsonish::escape(label),
            measurements.join(",\n")
        )
    }

    /// Renders the whole trajectory file.
    ///
    /// Entries extracted from an existing file start at their `{` (the
    /// extractor drops the surrounding indentation), so the first line is
    /// re-indented here to keep the rendered file stable across append
    /// cycles.
    pub fn render_file(workers: usize, entries: &[String]) -> String {
        let entries: Vec<String> = entries
            .iter()
            .map(|entry| {
                if entry.starts_with(' ') {
                    entry.clone()
                } else {
                    format!("  {entry}")
                }
            })
            .collect();
        format!(
            "{{\n \"bench\": \"throughput\",\n \"schema\": {},\n \"workers\": {},\n \"trajectory\": [\n{}\n ]\n}}\n",
            SCHEMA_VERSION,
            workers,
            entries.join(",\n")
        )
    }

    /// Appends `entry` to `entries`, replacing the last entry instead when
    /// it carries the same label (so re-runs update rather than grow the
    /// trajectory).
    pub fn push_entry(entries: &mut Vec<String>, entry: String) {
        let replace = entries
            .last()
            .and_then(|last| entry_label(last))
            .is_some_and(|last_label| Some(last_label) == entry_label(&entry));
        if replace {
            *entries.last_mut().expect("non-empty") = entry;
        } else {
            entries.push(entry);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        const LEGACY: &str = r#"{
 "bench": "throughput",
 "workers": 1,
 "measurements": [
  {"name": "engine_single_trace", "branches": 50000, "seconds": 0.010769, "branches_per_sec": 4642755},
  {"name": "suite_parallel", "branches": 100000, "seconds": 0.022130, "branches_per_sec": 4518823}
 ]
}"#;

        #[test]
        fn legacy_file_is_migrated_into_one_labelled_entry() {
            let entries = existing_entries(LEGACY);
            assert_eq!(entries.len(), 1);
            assert_eq!(entry_label(&entries[0]).as_deref(), Some(LEGACY_LABEL));
            assert!(entries[0].contains("engine_single_trace"));
            assert!(entries[0].contains("4642755"));
        }

        #[test]
        fn round_trip_preserves_entries() {
            let first = render_entry("a", &[r#"{"name": "x", "branches": 1}"#.to_string()]);
            let second = render_entry("b", &[r#"{"name": "y", "branches": 2}"#.to_string()]);
            let file = render_file(4, &[first.clone(), second.clone()]);
            let extracted = existing_entries(&file);
            assert_eq!(extracted.len(), 2);
            assert_eq!(entry_label(&extracted[0]).as_deref(), Some("a"));
            assert_eq!(entry_label(&extracted[1]).as_deref(), Some("b"));
            assert!(extracted[1].contains("\"y\""));
            // Re-rendering extracted entries reproduces the file verbatim,
            // so formatting cannot drift across append cycles.
            assert_eq!(render_file(4, &extracted), file);
        }

        #[test]
        fn labels_with_quotes_and_backslashes_round_trip() {
            let label = r#"fast "soa" \ run"#;
            let entry = render_entry(label, &["{}".to_string()]);
            assert_eq!(entry_label(&entry).as_deref(), Some(label));
            // The rendered file stays valid for the extractor and keeps the
            // entry intact on the next append cycle.
            let file = render_file(1, &[entry]);
            let extracted = existing_entries(&file);
            assert_eq!(extracted.len(), 1);
            assert_eq!(entry_label(&extracted[0]).as_deref(), Some(label));
            // Same-label replacement still works through the escaping.
            let mut entries = extracted;
            push_entry(
                &mut entries,
                render_entry(label, &[r#"{"v": 2}"#.to_string()]),
            );
            assert_eq!(entries.len(), 1);
            assert!(entries[0].contains("\"v\""));
        }

        #[test]
        fn push_entry_replaces_same_label_appends_new() {
            let mut entries = vec![render_entry("base", &["{}".to_string()])];
            push_entry(
                &mut entries,
                render_entry("current", &[r#"{"name": "v1"}"#.to_string()]),
            );
            assert_eq!(entries.len(), 2);
            push_entry(
                &mut entries,
                render_entry("current", &[r#"{"name": "v2"}"#.to_string()]),
            );
            assert_eq!(entries.len(), 2, "same label replaces the last entry");
            assert!(entries[1].contains("v2"));
            assert!(!entries[1].contains("v1"));
        }

        #[test]
        fn absent_fields_yield_no_entries() {
            assert!(existing_entries("{}").is_empty());
            assert!(existing_entries("not json at all").is_empty());
            assert_eq!(entry_label("{}"), None);
        }

        #[test]
        fn entry_measurement_extracts_named_rates() {
            let entries = existing_entries(LEGACY);
            let rate = entry_measurement(&entries[0], "engine_single_trace", "branches_per_sec");
            assert_eq!(rate, Some(4642755.0));
            let seconds = entry_measurement(&entries[0], "suite_parallel", "seconds");
            assert_eq!(seconds, Some(0.022130));
            assert_eq!(
                entry_measurement(&entries[0], "missing_measurement", "branches_per_sec"),
                None
            );
            assert_eq!(
                entry_measurement(&entries[0], "engine_single_trace", "missing_field"),
                None
            );
        }

        #[test]
        fn extraction_ignores_braces_inside_strings() {
            let tricky = r#"{"trajectory": [ {"label": "odd { ] value", "measurements": []} ]}"#;
            let entries = existing_entries(tricky);
            assert_eq!(entries.len(), 1);
            assert_eq!(entry_label(&entries[0]).as_deref(), Some("odd { ] value"));
        }
    }
}

pub mod harness {
    //! A tiny, dependency-free micro-benchmark harness.
    //!
    //! The workspace must build and run without network access, so the
    //! benches under `benches/` cannot use criterion. This harness provides
    //! the small subset they need: warm up, run a fixed number of timed
    //! iterations, and report throughput in million elements per second.

    use std::time::Instant;

    /// Number of timed iterations per measurement.
    pub const DEFAULT_ITERATIONS: u32 = 5;

    /// Times `f` and prints `group/name: <rate> Melem/s (<ms>/iter)`.
    ///
    /// `elements_per_iter` is the number of logical work items (branches,
    /// bytes, ...) one call to `f` processes. The closure's return value is
    /// accumulated and printed so the compiler cannot discard the work.
    pub fn bench<R: std::fmt::Debug>(
        group: &str,
        name: &str,
        elements_per_iter: u64,
        mut f: impl FnMut() -> R,
    ) {
        // Warm-up iteration (untimed): touches caches and page tables.
        let mut sink = f();
        let start = Instant::now();
        for _ in 0..DEFAULT_ITERATIONS {
            sink = f();
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed / DEFAULT_ITERATIONS;
        let rate = if per_iter.as_nanos() == 0 {
            f64::INFINITY
        } else {
            elements_per_iter as f64 / per_iter.as_secs_f64() / 1.0e6
        };
        println!(
            "{group}/{name}: {rate:.2} Melem/s ({:.2} ms/iter, last result {sink:?})",
            per_iter.as_secs_f64() * 1.0e3,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_reports_without_panicking() {
        harness::bench("test", "noop", 1, || 42u64);
    }

    #[test]
    fn default_is_used_without_args() {
        // The test binary receives its own args; just check the helper does
        // not panic and returns a positive count.
        assert!(branches_from_args() > 0);
    }
}
