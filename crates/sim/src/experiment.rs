//! Building blocks for the paper's tables and figures.
//!
//! Each function here computes the data behind one (or several) of the
//! paper's evaluation artefacts; the `tage-bench` binaries only format the
//! returned rows. Every sweep is a grid of [`TageSweepPoint`]s handed to the
//! shared point-runner [`run_tage_sweep`] — the functions only *expand the
//! axis* (probability exponents, window lengths, counter widths, automaton
//! on/off) and *format the rows*. Each point's suite evaluation is sharded
//! per trace across the available hardware threads with deterministic,
//! bit-identical aggregation; larger cross products run through the
//! `tage-bench` campaign runner, which steals work across whole points.
//! The mapping to the paper is:
//!
//! | paper artefact | function |
//! |---|---|
//! | Table 1 (configurations & misp/KI) | [`table1`] |
//! | Figures 2, 3 (class distributions, standard automaton) | [`class_distribution`] |
//! | Figure 4 (per-class MKP, 64 Kbit) | [`per_class_rates`] |
//! | Figures 5, 6 (modified automaton) | same functions with a modified-automaton config |
//! | Table 2 (three-level summary, p = 1/128) | [`three_level_summary`] |
//! | Table 3 (adaptive probability) | [`three_level_summary`] with [`RunOptions::adaptive`] |
//! | §6.2 probability sweep | [`probability_sweep`] |
//! | §5.1 BIM breakdown | [`bim_breakdown`] |
//! | §6 automaton accuracy cost | [`automaton_cost`] |
//! | ablations (window length, counter width) | [`window_ablation`], [`counter_width_ablation`] |

use tage::{CounterAutomaton, TageConfig};
use tage_confidence::{ConfidenceLevel, PredictionClass};
use tage_traces::Suite;

use crate::point::{run_tage_sweep, TageSweepPoint};
use crate::runner::RunOptions;
use crate::suite::{run_suite, SuiteRunResult};

/// The three predictor sizes of Table 1, with the standard automaton.
pub fn standard_configs() -> Vec<TageConfig> {
    vec![
        TageConfig::small(),
        TageConfig::medium(),
        TageConfig::large(),
    ]
}

/// The three predictor sizes with the paper's modified automaton (1/128).
pub fn modified_configs() -> Vec<TageConfig> {
    standard_configs()
        .into_iter()
        .map(|c| c.with_automaton(CounterAutomaton::paper_default()))
        .collect()
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Configuration name.
    pub config_name: String,
    /// Storage budget in bits.
    pub storage_bits: u64,
    /// Number of tables (including the bimodal base predictor).
    pub num_tables: usize,
    /// Minimum history length.
    pub min_history: usize,
    /// Maximum history length.
    pub max_history: usize,
    /// Mean MPKI over the CBP-1-like suite.
    pub cbp1_mpki: f64,
    /// Mean MPKI over the CBP-2-like suite.
    pub cbp2_mpki: f64,
}

/// Reproduces Table 1: the three simulated configurations and their mean
/// misprediction rates on both suites.
pub fn table1(cbp1: &Suite, cbp2: &Suite, branches_per_trace: usize) -> Vec<Table1Row> {
    let points: Vec<TageSweepPoint> = standard_configs()
        .into_iter()
        .map(TageSweepPoint::new)
        .collect();
    let r1 = run_tage_sweep(&points, cbp1, branches_per_trace);
    let r2 = run_tage_sweep(&points, cbp2, branches_per_trace);
    points
        .iter()
        .zip(r1.iter().zip(&r2))
        .map(|(point, (r1, r2))| Table1Row {
            config_name: point.config.name(),
            storage_bits: point.config.storage_bits(),
            num_tables: point.config.num_tagged_tables + 1,
            min_history: point.config.min_history,
            max_history: point.config.max_history,
            cbp1_mpki: r1.mean_mpki(),
            cbp2_mpki: r2.mean_mpki(),
        })
        .collect()
}

/// Per-trace class distribution: prediction coverage and MPKI contribution
/// of each of the 7 classes (one bar of Figures 2/3/5).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDistributionRow {
    /// Trace name.
    pub trace_name: String,
    /// Prediction coverage per class, in paper order.
    pub pcov: [f64; 7],
    /// MPKI contribution per class, in paper order.
    pub mpki_contribution: [f64; 7],
    /// Total MPKI of the trace.
    pub total_mpki: f64,
}

/// Computes the per-trace class distributions of Figures 2/3 (standard
/// automaton) or Figure 5 (pass a modified-automaton config).
pub fn class_distribution(
    config: &TageConfig,
    suite: &Suite,
    branches_per_trace: usize,
) -> Vec<ClassDistributionRow> {
    let result = run_suite(config, suite, branches_per_trace, &RunOptions::default());
    distribution_rows(&result)
}

/// Extracts class-distribution rows from an existing suite run.
pub fn distribution_rows(result: &SuiteRunResult) -> Vec<ClassDistributionRow> {
    result
        .traces
        .iter()
        .map(|trace| {
            let mut pcov = [0.0; 7];
            let mut mpki = [0.0; 7];
            for (i, class) in PredictionClass::ALL.into_iter().enumerate() {
                pcov[i] = trace.report.pcov(class);
                mpki[i] = trace.report.class_mpki(class);
            }
            ClassDistributionRow {
                trace_name: trace.trace_name.clone(),
                pcov,
                mpki_contribution: mpki,
                total_mpki: trace.mpki(),
            }
        })
        .collect()
}

/// Per-trace misprediction rate of each class, in MKP (one group of bars of
/// Figures 4/6).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRatesRow {
    /// Trace name.
    pub trace_name: String,
    /// Misprediction rate per class in MKP, in paper order.
    pub mprate_mkp: [f64; 7],
    /// Average misprediction rate of the trace in MKP.
    pub average_mkp: f64,
}

/// Computes the per-class misprediction rates of Figure 4 (standard
/// automaton) or Figure 6 (modified automaton) for the named traces.
pub fn per_class_rates(
    config: &TageConfig,
    suite: &Suite,
    trace_names: &[&str],
    branches_per_trace: usize,
) -> Vec<ClassRatesRow> {
    let selected = Suite::new(
        suite.name(),
        trace_names
            .iter()
            .filter_map(|name| suite.trace(name).cloned())
            .collect(),
    );
    let result = run_suite(
        config,
        &selected,
        branches_per_trace,
        &RunOptions::default(),
    );
    result
        .traces
        .iter()
        .map(|trace| {
            let mut rates = [0.0; 7];
            for (i, class) in PredictionClass::ALL.into_iter().enumerate() {
                rates[i] = trace.report.mprate_mkp(class);
            }
            ClassRatesRow {
                trace_name: trace.trace_name.clone(),
                mprate_mkp: rates,
                average_mkp: trace.mkp(),
            }
        })
        .collect()
}

/// One cell of Tables 2/3: coverage and rate of one confidence level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelCell {
    /// Prediction coverage of the level.
    pub pcov: f64,
    /// Misprediction coverage of the level.
    pub mpcov: f64,
    /// Misprediction rate of the level in MKP.
    pub mprate_mkp: f64,
}

/// One row of Tables 2/3: the three confidence levels for one
/// (configuration, suite) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelSummaryRow {
    /// Configuration name.
    pub config_name: String,
    /// Suite name.
    pub suite_name: String,
    /// High-confidence cell.
    pub high: LevelCell,
    /// Medium-confidence cell.
    pub medium: LevelCell,
    /// Low-confidence cell.
    pub low: LevelCell,
    /// Mean saturation probability in effect at the end of the runs (1/128
    /// for Table 2; varies for Table 3's adaptive controller).
    pub mean_final_probability: f64,
}

/// Computes one row of Table 2 (default options) or Table 3
/// ([`RunOptions::adaptive`]) for a configuration and a suite. The
/// configuration is expected to carry the modified automaton.
pub fn three_level_summary(
    config: &TageConfig,
    suite: &Suite,
    branches_per_trace: usize,
    options: &RunOptions,
) -> LevelSummaryRow {
    let result = run_suite(config, suite, branches_per_trace, options);
    let cell = |level: ConfidenceLevel| LevelCell {
        pcov: result.aggregate.level_pcov(level),
        mpcov: result.aggregate.level_mpcov(level),
        mprate_mkp: result.aggregate.level_mprate_mkp(level),
    };
    let mean_final_probability = if result.traces.is_empty() {
        config.automaton.saturation_probability()
    } else {
        result
            .traces
            .iter()
            .map(|t| t.final_saturation_probability)
            .sum::<f64>()
            / result.traces.len() as f64
    };
    LevelSummaryRow {
        config_name: config.name(),
        suite_name: suite.name().to_string(),
        high: cell(ConfidenceLevel::High),
        medium: cell(ConfidenceLevel::Medium),
        low: cell(ConfidenceLevel::Low),
        mean_final_probability,
    }
}

/// One row of the Section 6.2 probability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilitySweepRow {
    /// log2 of the inverse saturation probability.
    pub log2_inverse_probability: u32,
    /// The saturation probability itself.
    pub probability: f64,
    /// High-confidence prediction coverage.
    pub high_pcov: f64,
    /// High-confidence misprediction coverage.
    pub high_mpcov: f64,
    /// High-confidence misprediction rate in MKP.
    pub high_mprate_mkp: f64,
    /// Overall MPKI (to show the accuracy cost stays negligible).
    pub mpki: f64,
}

/// Sweeps the saturation probability (Section 6.2: 1/16 vs 1/128, extended
/// to a full range) for one configuration and suite.
pub fn probability_sweep(
    base_config: &TageConfig,
    suite: &Suite,
    branches_per_trace: usize,
    exponents: &[u32],
) -> Vec<ProbabilitySweepRow> {
    let points: Vec<TageSweepPoint> = exponents
        .iter()
        .map(|&exp| {
            TageSweepPoint::new(
                base_config
                    .clone()
                    .with_automaton(CounterAutomaton::probabilistic(exp)),
            )
        })
        .collect();
    let results = run_tage_sweep(&points, suite, branches_per_trace);
    exponents
        .iter()
        .zip(&results)
        .map(|(&exp, result)| ProbabilitySweepRow {
            log2_inverse_probability: exp,
            probability: 1.0 / f64::from(1u32 << exp),
            high_pcov: result.aggregate.level_pcov(ConfidenceLevel::High),
            high_mpcov: result.aggregate.level_mpcov(ConfidenceLevel::High),
            high_mprate_mkp: result.aggregate.level_mprate_mkp(ConfidenceLevel::High),
            mpki: result.mean_mpki(),
        })
        .collect()
}

/// One row of the Section 5.1 BIM-class breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BimBreakdownRow {
    /// Trace name.
    pub trace_name: String,
    /// Fraction of all predictions provided by the bimodal component.
    pub bim_pcov: f64,
    /// Fraction of all mispredictions provided by the bimodal component.
    pub bim_mpcov: f64,
    /// Misprediction rate of the whole BIM class in MKP.
    pub bim_mprate_mkp: f64,
    /// Misprediction rate of `high-conf-bim` in MKP.
    pub high_conf_bim_mkp: f64,
    /// Misprediction rate of `medium-conf-bim` in MKP.
    pub medium_conf_bim_mkp: f64,
    /// Misprediction rate of `low-conf-bim` in MKP.
    pub low_conf_bim_mkp: f64,
    /// Overall misprediction rate of the trace in MKP.
    pub overall_mkp: f64,
}

/// Computes the Section 5.1 breakdown of the bimodal-provided predictions.
pub fn bim_breakdown(
    config: &TageConfig,
    suite: &Suite,
    branches_per_trace: usize,
) -> Vec<BimBreakdownRow> {
    let result = run_suite(config, suite, branches_per_trace, &RunOptions::default());
    result
        .traces
        .iter()
        .map(|trace| {
            let bim_classes = [
                PredictionClass::HighConfBim,
                PredictionClass::MediumConfBim,
                PredictionClass::LowConfBim,
            ];
            let bim_predictions: u64 = bim_classes
                .iter()
                .map(|&c| trace.report.class(c).predictions)
                .sum();
            let bim_misses: u64 = bim_classes
                .iter()
                .map(|&c| trace.report.class(c).mispredictions)
                .sum();
            let total = trace.report.total();
            BimBreakdownRow {
                trace_name: trace.trace_name.clone(),
                bim_pcov: ratio(bim_predictions, total.predictions),
                bim_mpcov: ratio(bim_misses, total.mispredictions),
                bim_mprate_mkp: 1000.0 * ratio(bim_misses, bim_predictions),
                high_conf_bim_mkp: trace.report.mprate_mkp(PredictionClass::HighConfBim),
                medium_conf_bim_mkp: trace.report.mprate_mkp(PredictionClass::MediumConfBim),
                low_conf_bim_mkp: trace.report.mprate_mkp(PredictionClass::LowConfBim),
                overall_mkp: trace.mkp(),
            }
        })
        .collect()
}

/// One row of the automaton accuracy-cost comparison (Section 6: the
/// modified automaton costs less than 0.02 misp/KI).
#[derive(Debug, Clone, PartialEq)]
pub struct AutomatonCostRow {
    /// Configuration name.
    pub config_name: String,
    /// Suite name.
    pub suite_name: String,
    /// Mean MPKI with the standard automaton.
    pub standard_mpki: f64,
    /// Mean MPKI with the modified (1/128) automaton.
    pub modified_mpki: f64,
}

impl AutomatonCostRow {
    /// MPKI increase caused by the modified automaton.
    pub fn cost(&self) -> f64 {
        self.modified_mpki - self.standard_mpki
    }
}

/// Measures the accuracy cost of the modified automaton for every
/// configuration over the given suites.
pub fn automaton_cost(suites: &[&Suite], branches_per_trace: usize) -> Vec<AutomatonCostRow> {
    // The grid: for every configuration, a standard-automaton point followed
    // by its modified-automaton twin; run once per suite.
    let points: Vec<TageSweepPoint> = standard_configs()
        .into_iter()
        .flat_map(|config| {
            let modified = config
                .clone()
                .with_automaton(CounterAutomaton::paper_default());
            [TageSweepPoint::new(config), TageSweepPoint::new(modified)]
        })
        .collect();
    let per_suite: Vec<Vec<SuiteRunResult>> = suites
        .iter()
        .map(|suite| run_tage_sweep(&points, suite, branches_per_trace))
        .collect();
    let mut rows = Vec::new();
    for pair_index in 0..points.len() / 2 {
        for (suite, results) in suites.iter().zip(&per_suite) {
            let standard = &results[2 * pair_index];
            let modified = &results[2 * pair_index + 1];
            rows.push(AutomatonCostRow {
                config_name: standard.config_name.clone(),
                suite_name: suite.name().to_string(),
                standard_mpki: standard.mean_mpki(),
                modified_mpki: modified.mean_mpki(),
            });
        }
    }
    rows
}

/// One row of the `medium-conf-bim` window-length ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAblationRow {
    /// Window length in bimodal-provided predictions.
    pub window: u32,
    /// Prediction coverage of `medium-conf-bim`.
    pub medium_bim_pcov: f64,
    /// Misprediction rate of `medium-conf-bim` in MKP.
    pub medium_bim_mprate_mkp: f64,
    /// Misprediction rate of `high-conf-bim` in MKP (what the window is
    /// protecting).
    pub high_bim_mprate_mkp: f64,
}

/// Ablates the `medium-conf-bim` recency window length.
pub fn window_ablation(
    config: &TageConfig,
    suite: &Suite,
    branches_per_trace: usize,
    windows: &[u32],
) -> Vec<WindowAblationRow> {
    let points: Vec<TageSweepPoint> = windows
        .iter()
        .map(|&window| TageSweepPoint {
            config: config.clone(),
            options: RunOptions {
                bim_miss_window: window,
                ..RunOptions::default()
            },
        })
        .collect();
    let results = run_tage_sweep(&points, suite, branches_per_trace);
    windows
        .iter()
        .zip(&results)
        .map(|(&window, result)| WindowAblationRow {
            window,
            medium_bim_pcov: result.aggregate.pcov(PredictionClass::MediumConfBim),
            medium_bim_mprate_mkp: result.aggregate.mprate_mkp(PredictionClass::MediumConfBim),
            high_bim_mprate_mkp: result.aggregate.mprate_mkp(PredictionClass::HighConfBim),
        })
        .collect()
}

/// One row of the tagged-counter-width ablation (the paper notes that a
/// 4-bit counter does not fix the `Stag` class and slightly hurts accuracy).
#[derive(Debug, Clone, PartialEq)]
pub struct CounterWidthAblationRow {
    /// Tagged prediction-counter width in bits.
    pub counter_bits: u8,
    /// Mean MPKI.
    pub mpki: f64,
    /// Misprediction rate of the saturated-counter class in MKP.
    pub saturated_mprate_mkp: f64,
    /// Prediction coverage of the saturated-counter class.
    pub saturated_pcov: f64,
}

/// Ablates the tagged prediction-counter width with the standard automaton.
pub fn counter_width_ablation(
    base_config: &TageConfig,
    suite: &Suite,
    branches_per_trace: usize,
    widths: &[u8],
) -> Vec<CounterWidthAblationRow> {
    let points: Vec<TageSweepPoint> = widths
        .iter()
        .map(|&bits| {
            TageSweepPoint::new(
                base_config
                    .to_builder()
                    .counter_bits(bits)
                    .build()
                    .expect("ablation configuration must be valid"),
            )
        })
        .collect();
    let results = run_tage_sweep(&points, suite, branches_per_trace);
    widths
        .iter()
        .zip(&results)
        .map(|(&bits, result)| CounterWidthAblationRow {
            counter_bits: bits,
            mpki: result.mean_mpki(),
            saturated_mprate_mkp: result.aggregate.mprate_mkp(PredictionClass::Stag),
            saturated_pcov: result.aggregate.pcov(PredictionClass::Stag),
        })
        .collect()
}

fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_traces::{suites, Suite};

    /// The registry's 4-trace subset so the experiment tests stay fast.
    fn mini_suite() -> Suite {
        suites::cbp1_mini()
    }

    const N: usize = 8_000;

    #[test]
    fn configs_lists_cover_the_three_sizes() {
        assert_eq!(standard_configs().len(), 3);
        assert!(modified_configs()
            .iter()
            .all(|c| c.automaton == CounterAutomaton::paper_default()));
    }

    #[test]
    fn table1_reports_the_three_sizes_with_sane_mpki() {
        let suite = mini_suite();
        let rows = table1(&suite, &suite, 4_000);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].storage_bits, 16 * 1024);
        assert_eq!(rows[2].storage_bits, 256 * 1024);
        for row in &rows {
            assert!(row.cbp1_mpki > 0.0 && row.cbp1_mpki < 60.0, "{row:?}");
            assert!(
                (row.cbp1_mpki - row.cbp2_mpki).abs() < 1e-12,
                "same suite passed twice"
            );
        }
        // Bigger predictors should not be (meaningfully) worse.
        assert!(rows[2].cbp1_mpki <= rows[0].cbp1_mpki + 0.3);
    }

    #[test]
    fn class_distribution_rows_cover_every_trace_and_sum_to_one() {
        let rows = class_distribution(&TageConfig::small(), &mini_suite(), N);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            let pcov_sum: f64 = row.pcov.iter().sum();
            assert!((pcov_sum - 1.0).abs() < 1e-9, "{row:?}");
            let mpki_sum: f64 = row.mpki_contribution.iter().sum();
            assert!((mpki_sum - row.total_mpki).abs() < 1e-6);
        }
    }

    #[test]
    fn per_class_rates_orders_weak_above_saturated() {
        let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
        let rows = per_class_rates(&config, &mini_suite(), &["MM-5", "SERV-2"], 20_000);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            let wtag = row.mprate_mkp[3];
            let stag = row.mprate_mkp[6];
            assert!(
                wtag > stag,
                "{}: Wtag ({wtag}) should mispredict more than Stag ({stag})",
                row.trace_name
            );
        }
    }

    #[test]
    fn three_level_summary_reproduces_the_ordering_of_table_2() {
        let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
        let row = three_level_summary(&config, &mini_suite(), 40_000, &RunOptions::default());
        // Coverages sum to one.
        assert!((row.high.pcov + row.medium.pcov + row.low.pcov - 1.0).abs() < 1e-9);
        assert!((row.high.mpcov + row.medium.mpcov + row.low.mpcov - 1.0).abs() < 1e-9);
        // High confidence is a sizeable class with the lowest rate. (The
        // paper's coverage is larger because its traces are tens of millions
        // of branches long, which gives the 1/128 saturation many more
        // opportunities; see EXPERIMENTS.md.)
        assert!(row.high.pcov > 0.25, "high pcov {}", row.high.pcov);
        assert!(row.high.mprate_mkp < row.medium.mprate_mkp);
        assert!(row.medium.mprate_mkp < row.low.mprate_mkp);
        // Low confidence has a very high misprediction rate.
        assert!(
            row.low.mprate_mkp > 150.0,
            "low rate {}",
            row.low.mprate_mkp
        );
        assert!((row.mean_final_probability - 1.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_summary_tracks_probability() {
        let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
        let row = three_level_summary(&config, &mini_suite(), 20_000, &RunOptions::adaptive());
        assert!(row.mean_final_probability >= 1.0 / 1024.0 - 1e-12);
        assert!(row.mean_final_probability <= 1.0 + 1e-12);
    }

    #[test]
    fn probability_sweep_trades_coverage_for_purity() {
        let rows = probability_sweep(&TageConfig::small(), &mini_suite(), 20_000, &[0, 4, 7, 10]);
        assert_eq!(rows.len(), 4);
        // Larger probability (smaller exponent) => larger high-confidence
        // coverage and a higher (or equal) high-confidence miss rate.
        assert!(rows[0].high_pcov >= rows[3].high_pcov);
        assert!(rows[0].high_mprate_mkp >= rows[3].high_mprate_mkp - 1e-9);
        for row in &rows {
            assert!(row.probability > 0.0 && row.probability <= 1.0);
            assert!(row.mpki > 0.0);
        }
    }

    #[test]
    fn bim_breakdown_orders_the_three_bim_classes() {
        let rows = bim_breakdown(&TageConfig::small(), &mini_suite(), 20_000);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.bim_pcov > 0.0 && row.bim_pcov <= 1.0);
            if row.low_conf_bim_mkp > 0.0 && row.high_conf_bim_mkp > 0.0 {
                assert!(
                    row.low_conf_bim_mkp > row.high_conf_bim_mkp,
                    "{}: weak bimodal ({}) should mispredict more than strong ({})",
                    row.trace_name,
                    row.low_conf_bim_mkp,
                    row.high_conf_bim_mkp
                );
            }
        }
    }

    #[test]
    fn automaton_cost_is_small() {
        let suite = mini_suite();
        let rows = automaton_cost(&[&suite], 10_000);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            // The paper reports < 0.02 MPKI on real traces; allow a slightly
            // looser bound on the short synthetic runs.
            assert!(
                row.cost().abs() < 0.25,
                "{}: cost {} MPKI too large",
                row.config_name,
                row.cost()
            );
        }
    }

    #[test]
    fn window_ablation_zero_window_removes_the_medium_class() {
        let rows = window_ablation(&TageConfig::small(), &mini_suite(), N, &[0, 8, 32]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].medium_bim_pcov, 0.0);
        assert!(rows[2].medium_bim_pcov >= rows[1].medium_bim_pcov);
    }

    #[test]
    fn counter_width_ablation_produces_rows_for_each_width() {
        let rows = counter_width_ablation(&TageConfig::small(), &mini_suite(), N, &[2, 3, 4]);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.mpki > 0.0);
            assert!(row.saturated_pcov > 0.0);
        }
    }
}
