//! TAGE predictor configuration and storage accounting.

use core::fmt;

use crate::automaton::CounterAutomaton;

/// Configuration of a [`crate::TagePredictor`].
///
/// The three presets mirror Table 1 of the paper:
///
/// | preset | budget | tagged tables | min hist | max hist |
/// |---|---|---|---|---|
/// | [`TageConfig::small`]  | 16 Kbit  | 4 | 3 | 80  |
/// | [`TageConfig::medium`] | 64 Kbit  | 7 | 5 | 130 |
/// | [`TageConfig::large`]  | 256 Kbit | 8 | 5 | 300 |
///
/// As in the paper, the configurations are chosen to be realistically
/// implementable rather than accuracy-optimal: every tagged table has the
/// same number of entries and the bimodal hysteresis bits are not shared.
///
/// # Example
///
/// ```
/// use tage::TageConfig;
///
/// let config = TageConfig::small();
/// assert_eq!(config.num_tagged_tables, 4);
/// assert_eq!(config.storage_bits(), 16 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageConfig {
    /// Number of tagged components (excluding the bimodal base predictor).
    pub num_tagged_tables: usize,
    /// log2 of the number of entries of each tagged component.
    pub tagged_index_bits: u32,
    /// Width of the partial tags, in bits.
    pub tag_bits: u32,
    /// Width of the tagged prediction counters, in bits (3 in the paper).
    pub counter_bits: u8,
    /// Width of the useful counters, in bits (2 in the paper).
    pub useful_bits: u8,
    /// log2 of the number of entries of the bimodal base predictor.
    pub bimodal_index_bits: u32,
    /// Width of the bimodal counters (2 bits: prediction + hysteresis).
    pub bimodal_counter_bits: u8,
    /// Shortest global history length, `L(1)`.
    pub min_history: usize,
    /// Longest global history length, `L(M)`.
    pub max_history: usize,
    /// Width of the `USE_ALT_ON_NA` counter, in bits (4 in the paper).
    pub use_alt_on_na_bits: u8,
    /// Number of predictor updates between two graceful useful-counter
    /// reset steps (one-bit shift).
    pub useful_reset_period: u64,
    /// The counter-update automaton used by the tagged components.
    pub automaton: CounterAutomaton,
    /// Seed of the predictor's internal pseudo-random source (allocation
    /// tie-breaking and the probabilistic automaton).
    pub rng_seed: u64,
}

impl TageConfig {
    /// The 16 Kbit configuration of Table 1: 1 bimodal + 4 tagged tables,
    /// history lengths 3..80.
    pub fn small() -> Self {
        TageConfig {
            num_tagged_tables: 4,
            tagged_index_bits: 8,
            tag_bits: 9,
            counter_bits: 3,
            useful_bits: 2,
            bimodal_index_bits: 10,
            bimodal_counter_bits: 2,
            min_history: 3,
            max_history: 80,
            use_alt_on_na_bits: 4,
            useful_reset_period: 256 * 1024,
            automaton: CounterAutomaton::Standard,
            rng_seed: 0x7A6E_5EED_0BAD_F00D,
        }
    }

    /// The 64 Kbit configuration of Table 1: 1 bimodal + 7 tagged tables,
    /// history lengths 5..130.
    pub fn medium() -> Self {
        TageConfig {
            num_tagged_tables: 7,
            tagged_index_bits: 9,
            tag_bits: 11,
            counter_bits: 3,
            useful_bits: 2,
            bimodal_index_bits: 12,
            bimodal_counter_bits: 2,
            min_history: 5,
            max_history: 130,
            use_alt_on_na_bits: 4,
            useful_reset_period: 256 * 1024,
            automaton: CounterAutomaton::Standard,
            rng_seed: 0x7A6E_5EED_0BAD_F00D,
        }
    }

    /// The 256 Kbit configuration of Table 1: 1 bimodal + 8 tagged tables,
    /// history lengths 5..300.
    pub fn large() -> Self {
        TageConfig {
            num_tagged_tables: 8,
            tagged_index_bits: 11,
            tag_bits: 10,
            counter_bits: 3,
            useful_bits: 2,
            bimodal_index_bits: 13,
            bimodal_counter_bits: 2,
            min_history: 5,
            max_history: 300,
            use_alt_on_na_bits: 4,
            useful_reset_period: 256 * 1024,
            automaton: CounterAutomaton::Standard,
            rng_seed: 0x7A6E_5EED_0BAD_F00D,
        }
    }

    /// Returns this configuration with a different counter-update automaton.
    pub fn with_automaton(mut self, automaton: CounterAutomaton) -> Self {
        self.automaton = automaton;
        self
    }

    /// Returns this configuration with a different internal RNG seed.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// The geometric series of history lengths,
    /// `L(i) = (int)(α^(i-1) * L(1) + 0.5)`, with `L(1) = min_history` and
    /// `L(M) = max_history`.
    pub fn history_lengths(&self) -> Vec<usize> {
        geometric_history_lengths(self.num_tagged_tables, self.min_history, self.max_history)
    }

    /// Number of entries of each tagged component.
    pub fn tagged_entries(&self) -> usize {
        1 << self.tagged_index_bits
    }

    /// Number of entries of the bimodal base predictor.
    pub fn bimodal_entries(&self) -> usize {
        1 << self.bimodal_index_bits
    }

    /// Storage of one tagged entry in bits (counter + tag + useful).
    pub fn tagged_entry_bits(&self) -> u64 {
        u64::from(self.counter_bits) + u64::from(self.tag_bits) + u64::from(self.useful_bits)
    }

    /// Total predictor storage in bits (tagged tables plus bimodal table;
    /// the handful of extra state bits — histories, `USE_ALT_ON_NA`, the
    /// reset tick — are reported separately by
    /// [`TageConfig::ancillary_bits`] as is conventional).
    pub fn storage_bits(&self) -> u64 {
        let tagged =
            self.num_tagged_tables as u64 * self.tagged_entries() as u64 * self.tagged_entry_bits();
        let bimodal = self.bimodal_entries() as u64 * u64::from(self.bimodal_counter_bits);
        tagged + bimodal
    }

    /// Ancillary state in bits: global history, `USE_ALT_ON_NA`, and the
    /// useful-reset tick counter.
    pub fn ancillary_bits(&self) -> u64 {
        self.max_history as u64 + u64::from(self.use_alt_on_na_bits) + 20
    }

    /// The report name of this configuration, derived from its storage
    /// accounting in one place ([`crate::geometry::derived_name`]):
    /// `"TAGE-16K"` for the small preset, and so on. Names can therefore
    /// never drift from the storage they claim.
    pub fn name(&self) -> String {
        crate::geometry::derived_name(self.storage_bits(), self.num_tagged_tables)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_tagged_tables == 0 {
            return Err("at least one tagged table is required".to_string());
        }
        if self.num_tagged_tables > crate::prediction::MAX_TAGGED_TABLES {
            return Err(format!(
                "more than {} tagged tables is not supported (the prediction \
                 scratch is sized for at most that many)",
                crate::prediction::MAX_TAGGED_TABLES
            ));
        }
        if !(1..=24).contains(&self.tagged_index_bits) {
            return Err("tagged_index_bits must be in 1..=24".to_string());
        }
        if !(4..=16).contains(&self.tag_bits) {
            return Err("tag_bits must be in 4..=16".to_string());
        }
        if !(2..=6).contains(&self.counter_bits) {
            return Err("counter_bits must be in 2..=6".to_string());
        }
        if !(1..=4).contains(&self.useful_bits) {
            return Err("useful_bits must be in 1..=4".to_string());
        }
        if !(1..=24).contains(&self.bimodal_index_bits) {
            return Err("bimodal_index_bits must be in 1..=24".to_string());
        }
        if !(1..=3).contains(&self.bimodal_counter_bits) {
            return Err("bimodal_counter_bits must be in 1..=3".to_string());
        }
        if self.min_history == 0 || self.max_history < self.min_history {
            return Err("history lengths must satisfy 1 <= min <= max".to_string());
        }
        if self.max_history > 1024 {
            return Err("max_history must be at most 1024".to_string());
        }
        if self.num_tagged_tables > 1 && self.max_history == self.min_history {
            return Err("multiple tagged tables need max_history > min_history".to_string());
        }
        if self.use_alt_on_na_bits == 0 || self.use_alt_on_na_bits > 7 {
            return Err("use_alt_on_na_bits must be in 1..=7".to_string());
        }
        if self.useful_reset_period == 0 {
            return Err("useful_reset_period must be non-zero".to_string());
        }
        self.automaton.validate()?;
        Ok(())
    }

    /// Starts a builder pre-populated with this configuration.
    pub fn to_builder(&self) -> TageConfigBuilder {
        TageConfigBuilder {
            config: self.clone(),
        }
    }
}

impl Default for TageConfig {
    fn default() -> Self {
        TageConfig::medium()
    }
}

impl fmt::Display for TageConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: 1+{} tables, {} Kbit, hist {}..{}",
            self.name(),
            self.num_tagged_tables,
            self.storage_bits() / 1024,
            self.min_history,
            self.max_history
        )
    }
}

/// Builder for custom [`TageConfig`]s (ablation studies, sweeps).
///
/// # Example
///
/// ```
/// use tage::{CounterAutomaton, TageConfig};
///
/// let config = TageConfig::small()
///     .to_builder()
///     .counter_bits(4)
///     .automaton(CounterAutomaton::probabilistic(7))
///     .build()
///     .expect("valid config");
/// assert_eq!(config.counter_bits, 4);
/// ```
#[derive(Debug, Clone)]
pub struct TageConfigBuilder {
    config: TageConfig,
}

impl TageConfigBuilder {
    /// Starts from the medium preset.
    pub fn new() -> Self {
        TageConfig::medium().to_builder()
    }

    /// Sets the number of tagged tables.
    pub fn num_tagged_tables(mut self, n: usize) -> Self {
        self.config.num_tagged_tables = n;
        self
    }

    /// Sets the log2 number of entries per tagged table.
    pub fn tagged_index_bits(mut self, bits: u32) -> Self {
        self.config.tagged_index_bits = bits;
        self
    }

    /// Sets the tag width.
    pub fn tag_bits(mut self, bits: u32) -> Self {
        self.config.tag_bits = bits;
        self
    }

    /// Sets the tagged prediction-counter width.
    pub fn counter_bits(mut self, bits: u8) -> Self {
        self.config.counter_bits = bits;
        self
    }

    /// Sets the useful-counter width.
    pub fn useful_bits(mut self, bits: u8) -> Self {
        self.config.useful_bits = bits;
        self
    }

    /// Sets the log2 number of bimodal entries.
    pub fn bimodal_index_bits(mut self, bits: u32) -> Self {
        self.config.bimodal_index_bits = bits;
        self
    }

    /// Sets the minimum history length.
    pub fn min_history(mut self, length: usize) -> Self {
        self.config.min_history = length;
        self
    }

    /// Sets the maximum history length.
    pub fn max_history(mut self, length: usize) -> Self {
        self.config.max_history = length;
        self
    }

    /// Sets the counter-update automaton.
    pub fn automaton(mut self, automaton: CounterAutomaton) -> Self {
        self.config.automaton = automaton;
        self
    }

    /// Sets the useful-counter reset period.
    pub fn useful_reset_period(mut self, period: u64) -> Self {
        self.config.useful_reset_period = period;
        self
    }

    /// Sets the internal RNG seed.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.config.rng_seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the validation failure reported by [`TageConfig::validate`].
    pub fn build(self) -> Result<TageConfig, String> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl Default for TageConfigBuilder {
    fn default() -> Self {
        TageConfigBuilder::new()
    }
}

/// Computes the geometric series of history lengths used by the tagged
/// components: `L(i) = (int)(α^(i-1) * L(1) + 0.5)` with the end points
/// pinned to `min` and `max`.
pub fn geometric_history_lengths(tables: usize, min: usize, max: usize) -> Vec<usize> {
    assert!(tables >= 1, "at least one tagged table is required");
    assert!(
        min >= 1 && max >= min,
        "history lengths must satisfy 1 <= min <= max"
    );
    if tables == 1 {
        return vec![max];
    }
    let alpha = (max as f64 / min as f64).powf(1.0 / (tables as f64 - 1.0));
    let mut lengths: Vec<usize> = (0..tables)
        .map(|i| ((min as f64) * alpha.powi(i as i32) + 0.5) as usize)
        .collect();
    lengths[0] = min;
    lengths[tables - 1] = max;
    // Guarantee strict monotonicity even after rounding.
    for i in 1..tables {
        if lengths[i] <= lengths[i - 1] {
            lengths[i] = lengths[i - 1] + 1;
        }
    }
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_1_structure() {
        let small = TageConfig::small();
        assert_eq!(small.num_tagged_tables, 4);
        assert_eq!(small.min_history, 3);
        assert_eq!(small.max_history, 80);

        let medium = TageConfig::medium();
        assert_eq!(medium.num_tagged_tables, 7);
        assert_eq!(medium.min_history, 5);
        assert_eq!(medium.max_history, 130);

        let large = TageConfig::large();
        assert_eq!(large.num_tagged_tables, 8);
        assert_eq!(large.min_history, 5);
        assert_eq!(large.max_history, 300);
    }

    #[test]
    fn presets_hit_their_storage_budgets_exactly() {
        assert_eq!(TageConfig::small().storage_bits(), 16 * 1024);
        assert_eq!(TageConfig::medium().storage_bits(), 64 * 1024);
        assert_eq!(TageConfig::large().storage_bits(), 256 * 1024);
    }

    #[test]
    fn presets_are_valid() {
        for config in [
            TageConfig::small(),
            TageConfig::medium(),
            TageConfig::large(),
        ] {
            assert!(config.validate().is_ok(), "{config}");
        }
    }

    #[test]
    fn history_lengths_are_geometric_and_pinned() {
        let config = TageConfig::large();
        let lengths = config.history_lengths();
        assert_eq!(lengths.len(), 8);
        assert_eq!(lengths[0], 5);
        assert_eq!(*lengths.last().unwrap(), 300);
        assert!(lengths.windows(2).all(|w| w[0] < w[1]), "{lengths:?}");
        // The ratio between consecutive lengths should be roughly constant.
        let ratios: Vec<f64> = lengths
            .windows(2)
            .map(|w| w[1] as f64 / w[0] as f64)
            .collect();
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            ratios.iter().all(|r| (r / avg - 1.0).abs() < 0.35),
            "{ratios:?}"
        );
    }

    #[test]
    fn geometric_lengths_single_table() {
        assert_eq!(geometric_history_lengths(1, 5, 80), vec![80]);
    }

    #[test]
    fn builder_overrides_fields_and_validates() {
        let config = TageConfig::small()
            .to_builder()
            .counter_bits(4)
            .tag_bits(12)
            .build()
            .unwrap();
        assert_eq!(config.counter_bits, 4);
        assert_eq!(config.tag_bits, 12);
        // The name is derived from the changed storage accounting, not a
        // free-form field that could go stale.
        assert_eq!(config.name(), config.to_builder().build().unwrap().name());
        assert!(config.name().starts_with("TAGE-"));

        let err = TageConfig::small().to_builder().counter_bits(1).build();
        assert!(err.is_err());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = TageConfig::small();
        c.num_tagged_tables = 0;
        assert!(c.validate().is_err());

        let mut c = TageConfig::small();
        c.min_history = 0;
        assert!(c.validate().is_err());

        let mut c = TageConfig::small();
        c.max_history = c.min_history - 1;
        assert!(c.validate().is_err());

        let mut c = TageConfig::small();
        c.tag_bits = 2;
        assert!(c.validate().is_err());

        let mut c = TageConfig::small();
        c.useful_reset_period = 0;
        assert!(c.validate().is_err());

        let mut c = TageConfig::small();
        c.max_history = 4096;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_automaton_and_seed_are_fluent() {
        let c = TageConfig::medium()
            .with_automaton(CounterAutomaton::probabilistic(7))
            .with_rng_seed(99);
        assert_eq!(c.rng_seed, 99);
        assert!(matches!(
            c.automaton,
            CounterAutomaton::ProbabilisticSaturation { .. }
        ));
    }

    #[test]
    fn display_mentions_name_and_tables() {
        let s = format!("{}", TageConfig::small());
        assert!(s.contains("TAGE-16K"));
        assert!(s.contains("1+4"));
    }

    #[test]
    fn default_is_medium() {
        assert_eq!(TageConfig::default(), TageConfig::medium());
    }
}
