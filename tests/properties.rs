//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;

use tage_confidence_suite::confidence::{
    ConfidenceLevel, ConfidenceReport, PredictionClass, TageConfidenceClassifier,
};
use tage_confidence_suite::predictors::counter::{SignedCounter, UnsignedCounter};
use tage_confidence_suite::predictors::history::HistoryRegister;
use tage_confidence_suite::tage::folded::FoldedHistory;
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_confidence_suite::traces::reader::TraceReader;
use tage_confidence_suite::traces::writer::TraceWriter;
use tage_confidence_suite::traces::{BranchKind, BranchRecord, SplitMix64, Trace};

fn arbitrary_record() -> impl Strategy<Value = BranchRecord> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
        0u8..5,
        any::<u32>(),
    )
        .prop_map(|(pc, target, taken, kind, gap)| BranchRecord {
            pc,
            target,
            taken,
            kind: match kind {
                0 => BranchKind::Conditional,
                1 => BranchKind::Unconditional,
                2 => BranchKind::Call,
                3 => BranchKind::Return,
                _ => BranchKind::Indirect,
            },
            gap,
        })
}

proptest! {
    #[test]
    fn signed_counters_stay_in_range_under_any_update_sequence(
        bits in 1u8..=7,
        updates in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut counter = SignedCounter::new(bits);
        for taken in updates {
            counter.update(taken);
            prop_assert!(counter.value() >= counter.min());
            prop_assert!(counter.value() <= counter.max());
            // The centered magnitude is always odd and bounded.
            let magnitude = counter.centered_magnitude();
            prop_assert_eq!(magnitude % 2, 1);
            prop_assert!(u16::from(magnitude) < (1u16 << bits));
        }
    }

    #[test]
    fn unsigned_counters_saturate_and_never_underflow(
        bits in 1u8..=8,
        ops in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut counter = UnsignedCounter::new(bits);
        for up in ops {
            if up { counter.increment() } else { counter.decrement() }
            prop_assert!(counter.value() <= counter.max());
        }
    }

    #[test]
    fn incremental_folded_history_always_matches_functional_fold(
        original in 1usize..300,
        compressed in 1usize..16,
        outcomes in proptest::collection::vec(any::<bool>(), 1..400),
    ) {
        let mut history = HistoryRegister::new(original + 4);
        let mut fold = FoldedHistory::new(original, compressed);
        for taken in outcomes {
            let evicted = history.bit(original - 1);
            fold.update(taken, evicted);
            history.push(taken);
            prop_assert_eq!(fold.value(), fold.recompute(&history));
        }
    }

    #[test]
    fn trace_binary_round_trip_is_lossless(
        records in proptest::collection::vec(arbitrary_record(), 0..200),
        name in "[a-zA-Z0-9._-]{0,24}",
    ) {
        let trace = Trace::from_records(name, records);
        let bytes = TraceWriter::to_binary_bytes(&trace);
        let back = TraceReader::read_binary(&bytes[..]).expect("round trip");
        prop_assert_eq!(back.records(), trace.records());
        prop_assert_eq!(back.name(), trace.name());
        prop_assert_eq!(back.instruction_count(), trace.instruction_count());
    }

    #[test]
    fn trace_text_round_trip_is_lossless(
        records in proptest::collection::vec(arbitrary_record(), 0..100),
    ) {
        let trace = Trace::from_records("text-prop", records);
        let text = TraceWriter::to_text_string(&trace);
        let back = TraceReader::read_text(text.as_bytes()).expect("round trip");
        prop_assert_eq!(back.records(), trace.records());
    }

    #[test]
    fn splitmix_chance_is_always_within_bounds(seed in any::<u64>(), p in 0.0f64..1.0) {
        let mut rng = SplitMix64::new(seed);
        let x = rng.next_f64();
        prop_assert!((0.0..1.0).contains(&x));
        let _ = rng.chance(p);
        let below = rng.next_below(1 + (seed | 1) % 1000);
        prop_assert!(below < 1 + (seed | 1) % 1000);
    }

    #[test]
    fn tage_prediction_magnitude_is_always_a_valid_class(
        pcs in proptest::collection::vec(any::<u64>(), 1..200),
        outcomes in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let config = TageConfig::small();
        let mut predictor = TagePredictor::new(config.clone());
        let classifier = TageConfidenceClassifier::new(&config);
        for (pc, taken) in pcs.iter().zip(outcomes.iter().cycle()) {
            let prediction = predictor.predict(*pc);
            let class = classifier.classify(&prediction);
            prop_assert!(PredictionClass::ALL.contains(&class));
            // Level partition is total and consistent.
            prop_assert!(class.level().classes().contains(&class));
            predictor.update(*pc, *taken, &prediction);
        }
    }

    #[test]
    fn tage_predict_never_mutates_state(
        pcs in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let mut predictor = TagePredictor::new(TageConfig::small());
        // Train a little first.
        for (i, pc) in pcs.iter().enumerate() {
            let prediction = predictor.predict(*pc);
            predictor.update(*pc, i % 3 != 0, &prediction);
        }
        for pc in &pcs {
            let a = predictor.predict(*pc);
            let b = predictor.predict(*pc);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn automaton_update_never_leaves_counter_range(
        start in -4i8..=3,
        taken in any::<bool>(),
        exponent in 0u32..=10,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        for automaton in [CounterAutomaton::Standard, CounterAutomaton::probabilistic(exponent)] {
            let mut counter = SignedCounter::with_value(3, start);
            automaton.update_counter(&mut counter, taken, &mut rng);
            prop_assert!((-4..=3).contains(&counter.value()));
            // The counter never moves by more than one step.
            prop_assert!((i16::from(counter.value()) - i16::from(start)).abs() <= 1);
        }
    }

    #[test]
    fn confidence_report_fractions_are_consistent(
        events in proptest::collection::vec((0usize..7, any::<bool>()), 1..300),
    ) {
        let mut report = ConfidenceReport::new();
        for (class_index, mispredicted) in &events {
            report.record(PredictionClass::ALL[*class_index], *mispredicted);
        }
        let pcov_sum: f64 = PredictionClass::ALL.iter().map(|&c| report.pcov(c)).sum();
        prop_assert!((pcov_sum - 1.0).abs() < 1e-9);
        let level_preds: u64 = ConfidenceLevel::ALL.iter().map(|&l| report.level(l).predictions).sum();
        prop_assert_eq!(level_preds, events.len() as u64);
        for class in PredictionClass::ALL {
            let rate = report.mprate_mkp(class);
            prop_assert!((0.0..=1000.0).contains(&rate));
        }
        let confusion = report.binary_confusion(&[ConfidenceLevel::High]);
        prop_assert_eq!(confusion.total(), events.len() as u64);
    }

    #[test]
    fn classifier_window_never_exceeds_configuration(
        window in 0u32..=16,
        events in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..200),
    ) {
        let config = TageConfig::small();
        let mut predictor = TagePredictor::new(config.clone());
        let mut classifier = TageConfidenceClassifier::with_window(&config, window);
        for (i, (pc_bit, taken)) in events.iter().enumerate() {
            let pc = 0x1000 + (u64::from(*pc_bit) + i as u64 % 7) * 64;
            let prediction = predictor.predict(pc);
            classifier.classify_and_observe(&prediction, *taken);
            prop_assert!(classifier.window_remaining() <= window);
            predictor.update(pc, *taken, &prediction);
        }
    }
}
