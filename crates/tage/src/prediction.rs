//! The observable output of a TAGE prediction.
//!
//! The whole point of the paper is that these observables — which component
//! provided the prediction and the value of its counter — are sufficient to
//! grade confidence. [`TagePrediction`] therefore exposes everything the
//! predictor "sees" at prediction time, and is consumed both by
//! [`crate::TagePredictor::update`] and by the confidence classifier in the
//! `tage-confidence` crate.

use core::fmt;

/// Which component provided the final (or alternate) prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    /// The bimodal base predictor (no tagged component hit).
    Bimodal,
    /// A tagged component; `table` is its rank (0 = shortest history).
    Tagged {
        /// Rank of the providing tagged component (0-based, increasing
        /// history length).
        table: usize,
    },
}

impl Provider {
    /// Returns `true` if the provider is the bimodal base predictor.
    pub fn is_bimodal(self) -> bool {
        matches!(self, Provider::Bimodal)
    }

    /// Returns the tagged-table rank, if the provider is a tagged component.
    pub fn table(self) -> Option<usize> {
        match self {
            Provider::Bimodal => None,
            Provider::Tagged { table } => Some(table),
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provider::Bimodal => write!(f, "bimodal"),
            Provider::Tagged { table } => write!(f, "T{}", table + 1),
        }
    }
}

/// Everything observable about one TAGE prediction.
///
/// The indices and tags computed at prediction time are carried along so the
/// update phase reuses exactly the values the prediction used (as the
/// hardware would), and so the structure is self-contained for confidence
/// classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagePrediction {
    /// The final predicted direction.
    pub taken: bool,
    /// The component that provided the final prediction.
    pub provider: Provider,
    /// The value of the provider's prediction counter
    /// (bimodal counter if `provider` is [`Provider::Bimodal`]).
    pub provider_counter: i8,
    /// The centered magnitude `|2*ctr + 1|` of the provider counter.
    pub provider_magnitude: u8,
    /// Whether the provider counter was in a weak state.
    pub provider_weak: bool,
    /// The alternate prediction `altpred`: what the predictor would have
    /// predicted on a miss in the provider component.
    pub alternate_taken: bool,
    /// The component that provided the alternate prediction.
    pub alternate_provider: Provider,
    /// Whether the final prediction used the alternate prediction instead of
    /// the provider's counter (the `USE_ALT_ON_NA` path for newly allocated
    /// entries).
    pub used_alternate: bool,
    /// Per-tagged-table index computed for this prediction.
    pub table_indices: Vec<usize>,
    /// Per-tagged-table partial tag computed for this prediction.
    pub table_tags: Vec<u16>,
    /// Which tagged tables hit (tag match) for this prediction.
    pub table_hits: Vec<bool>,
    /// The bimodal table index for this prediction.
    pub bimodal_index: usize,
    /// The value of the bimodal counter at prediction time.
    pub bimodal_counter: i8,
}

impl TagePrediction {
    /// Returns `true` if the prediction was provided by the bimodal base
    /// predictor.
    pub fn is_bimodal_provided(&self) -> bool {
        self.provider.is_bimodal()
    }

    /// Returns `true` if the prediction was provided by a tagged component
    /// whose counter was saturated (the `Stag` class before the three-level
    /// grouping).
    pub fn is_saturated_tagged(&self, counter_bits: u8) -> bool {
        !self.provider.is_bimodal()
            && u32::from(self.provider_magnitude) == (1u32 << counter_bits) - 1
    }

    /// Returns `true` if the bimodal counter observed at prediction time was
    /// weak (the `low-conf-bim` condition).
    pub fn bimodal_weak(&self) -> bool {
        self.bimodal_counter == 0 || self.bimodal_counter == -1
    }
}

impl tage_predictors::PredictionOutcome for TagePrediction {
    fn predicted_taken(&self) -> bool {
        self.taken
    }
}

impl fmt::Display for TagePrediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by {} (ctr {}, |2c+1| {}{})",
            if self.taken { "taken" } else { "not-taken" },
            self.provider,
            self.provider_counter,
            self.provider_magnitude,
            if self.used_alternate {
                ", alt used"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(provider: Provider, magnitude: u8) -> TagePrediction {
        TagePrediction {
            taken: true,
            provider,
            provider_counter: 3,
            provider_magnitude: magnitude,
            provider_weak: magnitude == 1,
            alternate_taken: false,
            alternate_provider: Provider::Bimodal,
            used_alternate: false,
            table_indices: vec![0; 4],
            table_tags: vec![0; 4],
            table_hits: vec![false; 4],
            bimodal_index: 0,
            bimodal_counter: 1,
        }
    }

    #[test]
    fn provider_accessors() {
        assert!(Provider::Bimodal.is_bimodal());
        assert_eq!(Provider::Bimodal.table(), None);
        assert!(!Provider::Tagged { table: 2 }.is_bimodal());
        assert_eq!(Provider::Tagged { table: 2 }.table(), Some(2));
    }

    #[test]
    fn saturated_tagged_detection_depends_on_counter_width() {
        let p = sample(Provider::Tagged { table: 1 }, 7);
        assert!(p.is_saturated_tagged(3));
        assert!(!p.is_saturated_tagged(4));
        let bim = sample(Provider::Bimodal, 7);
        assert!(!bim.is_saturated_tagged(3));
    }

    #[test]
    fn bimodal_weak_uses_observed_bimodal_counter() {
        let mut p = sample(Provider::Bimodal, 1);
        p.bimodal_counter = 0;
        assert!(p.bimodal_weak());
        p.bimodal_counter = -1;
        assert!(p.bimodal_weak());
        p.bimodal_counter = 2;
        assert!(!p.bimodal_weak());
    }

    #[test]
    fn display_mentions_provider() {
        let p = sample(Provider::Tagged { table: 0 }, 5);
        assert!(format!("{p}").contains("T1"));
        assert!(format!("{}", Provider::Bimodal).contains("bimodal"));
    }
}
