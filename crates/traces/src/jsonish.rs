//! Minimal structural helpers for the hand-rolled JSON files the workspace
//! reads and writes (there is no JSON dependency).
//!
//! These are not a JSON parser: they do exactly the structural work the
//! benchmark trajectory, the campaign reports and the predictor-geometry
//! files need — extracting the objects of a named array (brace-balanced,
//! string-literal aware), pulling one string or numeric field out of an
//! object, and escaping strings for embedding.
//!
//! The helpers originated in `tage_bench::jsonish` and moved down here so
//! the `tage` crate can load [`geometry files`](../../tage) without a
//! dependency cycle; `tage_bench::jsonish` re-exports this module.

use std::fmt;

/// Default nesting-depth cap [`validate_document`] callers use for
/// untrusted input (sockets, uploaded files). Deep enough for every
/// document the workspace itself writes, shallow enough that a
/// brace-bomb cannot make downstream brace-balancing walks pathological.
pub const DEFAULT_MAX_DEPTH: usize = 32;

/// Structural rejection of an untrusted JSON document, carrying the byte
/// offset the scan failed at ([`validate_document`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocumentError {
    /// The document is empty (or whitespace only).
    Empty,
    /// A non-whitespace byte follows the complete top-level value.
    TrailingGarbage {
        /// Byte offset of the first trailing byte.
        offset: usize,
    },
    /// An opening `{`/`[` nested past the caller's depth cap.
    TooDeep {
        /// Byte offset of the offending opener.
        offset: usize,
        /// The cap that was exceeded.
        max_depth: usize,
    },
    /// A `}`/`]` with no matching opener, or the wrong closer for the
    /// innermost opener.
    UnbalancedCloser {
        /// Byte offset of the closer.
        offset: usize,
    },
    /// The document ended inside a string or with unclosed `{`/`[`.
    Unterminated {
        /// Byte offset of the end of input.
        offset: usize,
    },
}

impl fmt::Display for DocumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocumentError::Empty => write!(f, "empty document"),
            DocumentError::TrailingGarbage { offset } => {
                write!(f, "trailing garbage after top-level value at byte {offset}")
            }
            DocumentError::TooDeep { offset, max_depth } => {
                write!(f, "nesting deeper than {max_depth} at byte {offset}")
            }
            DocumentError::UnbalancedCloser { offset } => {
                write!(f, "unbalanced closing bracket at byte {offset}")
            }
            DocumentError::Unterminated { offset } => {
                write!(f, "unterminated value at byte {offset}")
            }
        }
    }
}

impl std::error::Error for DocumentError {}

/// Structurally validates one untrusted JSON document: exactly one
/// top-level value, brackets balanced and matched, strings terminated, and
/// no `{`/`[` nested deeper than `max_depth`. Rejections carry the byte
/// offset the scan failed at.
///
/// This is *not* a full JSON parser (the module's field extractors stay
/// structural), but it is the gate the `tage-serve` daemon runs on every
/// request body before any extractor touches it: trailing garbage after
/// the top-level value, brace bombs and truncated uploads are rejected
/// up front instead of being silently mis-extracted.
pub fn validate_document(json: &str, max_depth: usize) -> Result<(), DocumentError> {
    let bytes = json.as_bytes();
    let mut stack: Vec<u8> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    let mut seen_value = false;
    let mut value_done = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
                if stack.is_empty() {
                    value_done = true;
                }
            }
            i += 1;
            continue;
        }
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {}
            _ if value_done => return Err(DocumentError::TrailingGarbage { offset: i }),
            // Structural separators inside containers; at the top level
            // they are scalar garbage the extractors will reject, but the
            // scan must still advance past them.
            b',' | b':' => {}
            b'"' => {
                in_string = true;
                seen_value = true;
            }
            b'{' | b'[' => {
                if stack.len() >= max_depth {
                    return Err(DocumentError::TooDeep {
                        offset: i,
                        max_depth,
                    });
                }
                stack.push(b);
                seen_value = true;
            }
            b'}' | b']' => {
                let expected_opener = if b == b'}' { b'{' } else { b'[' };
                if stack.pop() != Some(expected_opener) {
                    return Err(DocumentError::UnbalancedCloser { offset: i });
                }
                if stack.is_empty() {
                    value_done = true;
                }
            }
            _ => {
                // A scalar token (number, true/false/null, or garbage —
                // the extractors decide): consume to the next delimiter.
                seen_value = true;
                let scalar =
                    |c: u8| !matches!(c, b' ' | b'\t' | b'\r' | b'\n' | b',' | b'}' | b']');
                while i < bytes.len() && scalar(bytes[i]) {
                    i += 1;
                }
                if stack.is_empty() {
                    value_done = true;
                }
                continue;
            }
        }
        i += 1;
    }
    if in_string || !stack.is_empty() {
        return Err(DocumentError::Unterminated {
            offset: bytes.len(),
        });
    }
    if !seen_value {
        return Err(DocumentError::Empty);
    }
    Ok(())
}

/// Extracts the raw JSON objects of an array field named `key` from
/// `json`, using brace balancing (string-literal aware). Returns an
/// empty vector if the field is absent.
pub fn extract_array_objects(json: &str, key: &str) -> Vec<String> {
    let needle = format!("\"{key}\":");
    let Some(start) = json.find(&needle) else {
        return Vec::new();
    };
    let Some(open) = json[start..].find('[') else {
        return Vec::new();
    };
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut object_start = None;
    for (offset, c) in json[start + open..].char_indices() {
        let position = start + open + offset;
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    object_start = Some(position);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(from) = object_start.take() {
                        objects.push(json[from..=position].to_string());
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    objects
}

/// Extracts the (unescaped) value of the string field `key` from a JSON
/// object, if present.
pub fn string_field(object: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let rest = object[start..].trim_start().strip_prefix('"')?;
    let mut value = String::new();
    let mut escaped = false;
    for c in rest.chars() {
        if escaped {
            value.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Some(value);
        } else {
            value.push(c);
        }
    }
    None
}

/// Extracts the value of the numeric field `key` from a JSON object, if
/// present and parseable.
pub fn number_field(object: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let rest = object[start..].trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the raw numeric values of a *flat* array field named `key`
/// (numbers only, no nested structure), if present. Returns `None` when the
/// field is absent and an empty vector when the array is empty.
pub fn number_array_field(object: &str, key: &str) -> Option<Vec<f64>> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let rest = object[start..].trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    let mut values = Vec::new();
    for item in rest[..end].split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        values.push(item.parse().ok()?);
    }
    Some(values)
}

/// Extracts the (unescaped) string values of a *flat* array field named
/// `key` (strings only, no nested structure), if present. Returns `None`
/// when the field is absent or holds non-string items, and an empty vector
/// when the array is empty.
pub fn string_array_field(object: &str, key: &str) -> Option<Vec<String>> {
    let needle = format!("\"{key}\":");
    let start = object.find(&needle)? + needle.len();
    let mut rest = object[start..].trim_start().strip_prefix('[')?;
    let mut values = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(']') {
            let _ = after;
            return Some(values);
        }
        rest = rest.strip_prefix('"')?;
        let mut value = String::new();
        let mut escaped = false;
        let mut consumed = None;
        for (i, c) in rest.char_indices() {
            if escaped {
                value.push(c);
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                consumed = Some(i + 1);
                break;
            } else {
                value.push(c);
            }
        }
        rest = &rest[consumed?..];
        values.push(value);
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.starts_with(']') {
            return None;
        }
    }
}

/// Escapes a string for embedding in a JSON string literal: quotes and
/// backslashes are escaped, control characters are replaced by spaces.
pub fn escape(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if c.is_control() => escaped.push(' '),
            c => escaped.push(c),
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_extract_from_simple_objects() {
        let obj = r#"{"name": "engine", "rate": 123456.5, "neg": -2e3}"#;
        assert_eq!(string_field(obj, "name").as_deref(), Some("engine"));
        assert_eq!(number_field(obj, "rate"), Some(123456.5));
        assert_eq!(number_field(obj, "neg"), Some(-2000.0));
        assert_eq!(string_field(obj, "missing"), None);
        assert_eq!(number_field(obj, "name"), None);
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_controls() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("a\nb"), "a b");
    }

    #[test]
    fn array_extraction_is_string_aware() {
        let json = r#"{"items": [ {"v": "has { and ] inside"}, {"v": 2} ]}"#;
        let objects = extract_array_objects(json, "items");
        assert_eq!(objects.len(), 2);
        assert_eq!(
            string_field(&objects[0], "v").as_deref(),
            Some("has { and ] inside")
        );
    }

    #[test]
    fn string_arrays_extract_flat_lists() {
        let obj = r#"{"suites": ["cbp1-mini", "cbp2-mini"], "empty": [], "esc": ["a\"b", "c\\d"], "mixed": [1, "x"], "nested": [["a"]]}"#;
        assert_eq!(
            string_array_field(obj, "suites"),
            Some(vec!["cbp1-mini".to_string(), "cbp2-mini".to_string()])
        );
        assert_eq!(string_array_field(obj, "empty"), Some(Vec::new()));
        assert_eq!(
            string_array_field(obj, "esc"),
            Some(vec!["a\"b".to_string(), "c\\d".to_string()])
        );
        assert_eq!(string_array_field(obj, "mixed"), None);
        assert_eq!(string_array_field(obj, "nested"), None);
        assert_eq!(string_array_field(obj, "missing"), None);
        // Truncated input is a rejection, not a panic or a partial list.
        assert_eq!(string_array_field(r#"{"k": ["a", "b"#, "k"), None);
    }

    #[test]
    fn documents_validate_and_reject_with_offsets() {
        for good in [
            r#"{"a": 1, "b": [1, 2], "c": {"d": "x}y"}}"#,
            r#"[1, 2, 3]"#,
            "  {\n}\n",
            r#""just a string""#,
            "42",
            "true",
        ] {
            assert_eq!(validate_document(good, DEFAULT_MAX_DEPTH), Ok(()), "{good}");
        }
        assert_eq!(validate_document("", 8), Err(DocumentError::Empty));
        assert_eq!(validate_document("  \n ", 8), Err(DocumentError::Empty));
    }

    #[test]
    fn trailing_garbage_is_rejected_at_its_byte_offset() {
        assert_eq!(
            validate_document(r#"{"a": 1} {"b": 2}"#, 8),
            Err(DocumentError::TrailingGarbage { offset: 9 })
        );
        assert_eq!(
            validate_document("[1] x", 8),
            Err(DocumentError::TrailingGarbage { offset: 4 })
        );
        assert_eq!(
            validate_document("42 43", 8),
            Err(DocumentError::TrailingGarbage { offset: 3 })
        );
        assert_eq!(
            validate_document("\"s\"\"t\"", 8),
            Err(DocumentError::TrailingGarbage { offset: 3 })
        );
        // Whitespace after the value is fine.
        assert_eq!(validate_document("{\"a\": 1}\n\n", 8), Ok(()));
    }

    #[test]
    fn nesting_depth_is_capped() {
        let deep_ok = format!("{}1{}", "[".repeat(8), "]".repeat(8));
        assert_eq!(validate_document(&deep_ok, 8), Ok(()));
        let too_deep = format!("{}1{}", "[".repeat(9), "]".repeat(9));
        assert_eq!(
            validate_document(&too_deep, 8),
            Err(DocumentError::TooDeep {
                offset: 8,
                max_depth: 8
            })
        );
        // A brace bomb with no closers is caught by the same cap.
        let bomb = "[".repeat(10_000);
        assert!(matches!(
            validate_document(&bomb, DEFAULT_MAX_DEPTH),
            Err(DocumentError::TooDeep {
                offset: 32,
                max_depth: DEFAULT_MAX_DEPTH
            })
        ));
    }

    #[test]
    fn truncation_and_mismatched_brackets_are_rejected() {
        assert_eq!(
            validate_document(r#"{"a": "unterminated"#, 8),
            Err(DocumentError::Unterminated { offset: 19 })
        );
        assert_eq!(
            validate_document("[1, 2", 8),
            Err(DocumentError::Unterminated { offset: 5 })
        );
        assert_eq!(
            validate_document("[1, 2}", 8),
            Err(DocumentError::UnbalancedCloser { offset: 5 })
        );
        assert_eq!(
            validate_document("}", 8),
            Err(DocumentError::UnbalancedCloser { offset: 0 })
        );
        // A string-escaped quote must not terminate the string.
        assert_eq!(
            validate_document(r#"{"a": "x\""#, 8),
            Err(DocumentError::Unterminated { offset: 10 })
        );
        // Errors render with their offsets for HTTP 400 bodies.
        let rendered = DocumentError::TrailingGarbage { offset: 9 }.to_string();
        assert!(rendered.contains("byte 9"), "{rendered}");
    }

    #[test]
    fn number_arrays_extract_flat_lists() {
        let obj = r#"{"lengths": [3, 8, 25, 80], "empty": [], "bad": [1, "x"]}"#;
        assert_eq!(
            number_array_field(obj, "lengths"),
            Some(vec![3.0, 8.0, 25.0, 80.0])
        );
        assert_eq!(number_array_field(obj, "empty"), Some(Vec::new()));
        assert_eq!(number_array_field(obj, "bad"), None);
        assert_eq!(number_array_field(obj, "missing"), None);
    }
}
